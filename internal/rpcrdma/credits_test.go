package rpcrdma

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
)

func TestCreditGateBasics(t *testing.T) {
	sim := des.New()
	g := newCreditGate(sim, 2)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		sim.Spawn("w", func(p *des.Proc) {
			g.acquire(p)
			order = append(order, i)
			p.Sleep(10 * time.Microsecond)
			g.release()
		})
	}
	sim.Run()
	if len(order) != 4 {
		t.Fatalf("completed %d acquisitions", len(order))
	}
	if g.Outstanding() != 0 {
		t.Fatalf("outstanding = %d at end", g.Outstanding())
	}
}

func TestCreditGateShrinkAndGrow(t *testing.T) {
	sim := des.New()
	g := newCreditGate(sim, 4)
	maxConcurrent := 0
	active := 0
	for i := 0; i < 12; i++ {
		sim.Spawn("w", func(p *des.Proc) {
			g.acquire(p)
			active++
			if active > maxConcurrent {
				maxConcurrent = active
			}
			p.Sleep(time.Millisecond)
			active--
			g.release()
		})
	}
	sim.Spawn("shrink", func(p *des.Proc) {
		p.Sleep(100 * time.Microsecond)
		g.setGranted(1)
		p.Sleep(5 * time.Millisecond)
		g.setGranted(8)
	})
	sim.Run()
	if maxConcurrent > 8 {
		t.Fatalf("max concurrent = %d exceeded the largest grant", maxConcurrent)
	}
	if g.Granted() != 8 {
		t.Fatalf("granted = %d", g.Granted())
	}
}

// TestCreditGateWaiterChurnDrains queues a deep waiter backlog behind a
// shrunken grant and verifies the ring-buffered waiter list (which replaced
// the retention-prone waiters[1:] re-slicing — see des.Ring) fully drains
// under heavy churn and the gate keeps granting afterwards.
func TestCreditGateWaiterChurnDrains(t *testing.T) {
	sim := des.New()
	g := newCreditGate(sim, 1)
	completed := 0
	for i := 0; i < 200; i++ {
		sim.Spawn("w", func(p *des.Proc) {
			g.acquire(p)
			p.Sleep(time.Microsecond)
			g.release()
			completed++
		})
	}
	sim.Spawn("grow", func(p *des.Proc) {
		p.Sleep(50 * time.Microsecond)
		g.setGranted(4)
	})
	sim.Run()
	if completed != 200 {
		t.Fatalf("completed %d acquisitions, want 200", completed)
	}
	if g.waiters.Len() != 0 {
		t.Fatalf("waiter ring not drained: %d left", g.waiters.Len())
	}
	if g.Outstanding() != 0 {
		t.Fatalf("outstanding = %d at end", g.Outstanding())
	}
}

func TestCreditGateNeverRevokesLastCredit(t *testing.T) {
	sim := des.New()
	g := newCreditGate(sim, 4)
	g.setGranted(0)
	if g.Granted() != 1 {
		t.Fatalf("grant floor = %d, want 1", g.Granted())
	}
	done := false
	sim.Spawn("w", func(p *des.Proc) {
		g.acquire(p)
		done = true
		g.release()
	})
	sim.Run()
	if !done {
		t.Fatal("progress stopped under zero grant")
	}
}

// TestDynamicCreditsThrottleUnderPinnedReplies drives the §4.1 attack with
// dynamic credits enabled: as the misbehaving client pins reply buffers,
// the server's advertised grant falls and the client observes it.
func TestDynamicCreditsThrottleUnderPinnedReplies(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	client := fab.AddNode(ibsim.NodeConfig{Name: "client", Cores: 2})
	server := fab.AddNode(ibsim.NodeConfig{Name: "server", Cores: 4})
	svc := &blobService{stored: pattern(32<<10, 1)}
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(client, server, ibsim.QPConfig{})
		cmgr := memreg.NewManager(p, client, memreg.Config{})
		smgr := memreg.NewManager(p, server, memreg.Config{})
		disp := oncrpc.NewDispatcher()
		disp.Register(svc)
		cfg := Config{Design: ReadRead, Credits: 16, DynamicCredits: true}
		st := NewServerTransport(p, server, smgr, disp, cfg)
		st.Serve(sq)
		ct := NewClientTransport(p, cq, cmgr, cfg)
		ct.DropDone = true // withhold DONEs: server buffers pin
		rpc := oncrpc.NewClient(ct, 4242, 1, oncrpc.Auth{})
		grantBefore := ct.GrantedCredits()
		for i := 0; i < 10; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
			if _, _, err := rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
		}
		if ct.GrantedCredits() >= grantBefore {
			t.Errorf("grant did not shrink: before %d, after %d (parked %d)",
				grantBefore, ct.GrantedCredits(), st.ParkedReplies())
		}
		if st.ParkedReplies() != 10 {
			t.Errorf("parked = %d, want 10", st.ParkedReplies())
		}
	})
	sim.Run()
}

// TestDynamicCreditsStabilize verifies that once the client behaves again,
// the grant stops falling and holds at capacity minus the permanently
// pinned buffers — the attacker's earlier damage is bounded, not repaired
// (nothing can retroactively send the withheld DONEs).
func TestDynamicCreditsStabilize(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	client := fab.AddNode(ibsim.NodeConfig{Name: "client", Cores: 2})
	server := fab.AddNode(ibsim.NodeConfig{Name: "server", Cores: 4})
	svc := &blobService{stored: pattern(16<<10, 2)}
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(client, server, ibsim.QPConfig{})
		cmgr := memreg.NewManager(p, client, memreg.Config{})
		smgr := memreg.NewManager(p, server, memreg.Config{})
		disp := oncrpc.NewDispatcher()
		disp.Register(svc)
		cfg := Config{Design: ReadRead, Credits: 16, DynamicCredits: true}
		st := NewServerTransport(p, server, smgr, disp, cfg)
		st.Serve(sq)
		ct := NewClientTransport(p, cq, cmgr, cfg)
		rpc := oncrpc.NewClient(ct, 4242, 1, oncrpc.Auth{})
		ct.DropDone = true
		for i := 0; i < 8; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
			rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		}
		pinned := st.ParkedReplies() // 8: permanently lost to the attack
		ct.DropDone = false          // behave again
		for i := 0; i < 8; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
			rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		}
		p.Sleep(time.Millisecond) // let trailing DONEs drain
		if st.ParkedReplies() != pinned {
			t.Errorf("parked = %d, want the attack's %d (honest replies released)",
				st.ParkedReplies(), pinned)
		}
		want := 16 - pinned
		if got := ct.GrantedCredits(); got < want-1 || got > want {
			t.Errorf("grant = %d, want to stabilize near %d", got, want)
		}
	})
	sim.Run()
}
