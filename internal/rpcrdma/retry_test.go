package rpcrdma

import (
	"errors"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
)

// A call to a server that never replies must fail with ErrTimeout after
// exhausting its retransmissions, with exponential backoff between attempts
// (1ms, then 2ms, then 4ms here).
func TestCallTimeoutExhaustsRetries(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	nodeCfg := ibsim.NodeConfig{Cores: 2, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond}
	cCfg, sCfg := nodeCfg, nodeCfg
	cCfg.Name, sCfg.Name = "client", "server"
	cn := fab.AddNode(cCfg)
	sn := fab.AddNode(sCfg)
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(cn, sn, ibsim.QPConfig{})
		// The far end posts receives (no RNR) but nobody ever replies.
		for i := 0; i < 16; i++ {
			sq.PostRecv(uint64(i), 4096)
		}
		mgr := memreg.NewManager(p, cn, memreg.Config{Mode: memreg.Regular})
		ct := NewClientTransport(p, cq, mgr, Config{
			CallTimeout: time.Millisecond, RetryLimit: 2,
		})
		start := sim.Now()
		_, err := ct.Roundtrip(p, &oncrpc.Request{XID: 7, Header: []byte("call")})
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		elapsed := time.Duration(sim.Now() - start)
		if elapsed < 7*time.Millisecond || elapsed > 8*time.Millisecond {
			t.Errorf("elapsed = %v, want ~7ms (1+2+4 backoff)", elapsed)
		}
		if ct.Timeouts != 3 || ct.Retransmits != 2 {
			t.Errorf("Timeouts=%d Retransmits=%d, want 3 and 2", ct.Timeouts, ct.Retransmits)
		}
		if len(ct.pending) != 0 {
			t.Errorf("pending map should be empty, has %d entries", len(ct.pending))
		}
	})
	sim.Run()
}

// Exhausting the retransmission budget must surface the typed
// ErrRetriesExhausted sentinel — and keep matching ErrTimeout, so existing
// isTransportError-style checks still classify it as a transport failure.
func TestRetriesExhaustedTyped(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	nodeCfg := ibsim.NodeConfig{Cores: 2, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond}
	cCfg, sCfg := nodeCfg, nodeCfg
	cCfg.Name, sCfg.Name = "client", "server"
	cn := fab.AddNode(cCfg)
	sn := fab.AddNode(sCfg)
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(cn, sn, ibsim.QPConfig{})
		for i := 0; i < 16; i++ {
			sq.PostRecv(uint64(i), 4096)
		}
		mgr := memreg.NewManager(p, cn, memreg.Config{Mode: memreg.Regular})
		ct := NewClientTransport(p, cq, mgr, Config{
			CallTimeout: time.Millisecond, RetryLimit: 2,
		})
		_, err := ct.Roundtrip(p, &oncrpc.Request{XID: 9, Header: []byte("call")})
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Errorf("err = %v, want errors.Is(err, ErrRetriesExhausted)", err)
		}
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, must still match ErrTimeout", err)
		}
	})
	sim.Run()
}

// A reply that arrives after the first timer expiry (but before retries are
// exhausted) still completes the call: the retransmission carries the same
// XID, so whichever server response lands first finishes the attempt in
// progress.
func TestSlowReplyCompletesRetransmittedCall(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	nodeCfg := ibsim.NodeConfig{Cores: 2, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond}
	cCfg, sCfg := nodeCfg, nodeCfg
	cCfg.Name, sCfg.Name = "client", "server"
	cn := fab.AddNode(cCfg)
	sn := fab.AddNode(sCfg)
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(cn, sn, ibsim.QPConfig{})
		// Hand-rolled slow server: absorbs transmissions of XID 7 and sends
		// one (delayed) reply after 2.5 ms — past the first two deadlines.
		for i := 0; i < 16; i++ {
			sq.PostRecv(uint64(i), 4096)
		}
		received := 0
		sim.Spawn("slow-server", func(srvp *des.Proc) {
			for {
				cqe := sq.RecvCQ.Wait(srvp)
				if cqe == nil || cqe.Err != nil {
					return
				}
				received++
				if received == 1 {
					reply := &Header{XID: 7, Credits: 1, Type: MsgRDMA}
					wire := append(reply.Encode(), []byte("pong")...)
					sim.SpawnAt(sim.Now()+des.Time(2500*time.Microsecond), "reply", func(*des.Proc) {
						sq.PostSend(&ibsim.SendWQE{WRID: 99, Op: ibsim.OpSend, Payload: wire})
					})
				}
			}
		})
		mgr := memreg.NewManager(p, cn, memreg.Config{Mode: memreg.Regular})
		ct := NewClientTransport(p, cq, mgr, Config{
			CallTimeout: time.Millisecond, RetryLimit: 3,
		})
		resp, err := ct.Roundtrip(p, &oncrpc.Request{XID: 7, Header: []byte("ping")})
		if err != nil {
			t.Errorf("roundtrip: %v", err)
			return
		}
		if string(resp.Header) != "pong" {
			t.Errorf("reply body = %q, want \"pong\"", resp.Header)
		}
		if ct.Retransmits < 1 {
			t.Errorf("Retransmits = %d, want >= 1", ct.Retransmits)
		}
	})
	sim.Run()
}
