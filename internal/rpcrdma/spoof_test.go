package rpcrdma

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/oncrpc"
)

// victimXID is the first XID the victim's RPC client issues: the simulator
// seeds XID sequences from the (program, version) pair, which is exactly
// what makes them guessable to a DONE forger.
const victimXID = 4242<<8 + 1 + 1

// TestForgedDoneCannotFreeOtherConn: on dedicated connections — both the
// legacy per-connection receive path and the SRQ-sharded one — the parked-
// reply map is keyed by connection, so a forged DONE carrying another
// client's XID must bounce off (DoneRejected) and leave the victim's parked
// reply exactly where it was.
func TestForgedDoneCannotFreeOtherConn(t *testing.T) {
	paths := []struct {
		name string
		cfg  Config
	}{
		{"legacy", Config{Design: ReadRead, Workers: 2}},
		{"sharded", Config{Design: ReadRead, Workers: 2, Shards: 2, SRQDepth: 64}},
	}
	for _, path := range paths {
		path := path
		t.Run(path.name, func(t *testing.T) {
			sim := des.New()
			e := newScaleEnv(sim, 2)
			sim.Spawn("setup", func(p *des.Proc) {
				e.startServer(p, path.cfg)
				e.svc.stored = pattern(32<<10, 3)
				vt, vrpc, _, ok := e.dial(p, 0, path.cfg)
				if !ok {
					t.Error("victim dial rejected")
					return
				}
				// The victim withholds its DONE, pinning one parked reply —
				// the target the forger tries to free.
				vt.DropDone = true
				dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
				if _, _, err := vrpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
					t.Errorf("victim get: %v", err)
					return
				}
				p.Sleep(time.Millisecond)
				if got := e.st.ParkedReplies(); got != 1 {
					t.Errorf("parked = %d before forgery, want 1", got)
					return
				}
				// The attacker connects normally and replays the victim's XID.
				aq, sq := e.fab.Connect(e.clients[1], e.server, ibsim.QPConfig{})
				if !e.st.TryServe(sq) {
					t.Error("attacker dial rejected")
					return
				}
				rejBefore := e.st.DoneRejected
				forged := &Header{XID: victimXID, Type: MsgDone}
				if cqe := aq.PostAndWait(p, &ibsim.SendWQE{Op: ibsim.OpSend, Payload: forged.Encode()}); cqe.Err != nil {
					t.Errorf("forged DONE send: %v", cqe.Err)
					return
				}
				p.Sleep(time.Millisecond)
				if got := e.st.ParkedReplies(); got != 1 {
					t.Errorf("forged DONE freed a cross-connection park: parked = %d, want 1", got)
				}
				if e.st.DoneRejected != rejBefore+1 {
					t.Errorf("DoneRejected = %d, want %d", e.st.DoneRejected, rejBefore+1)
				}
				if e.st.CrossClientFrees != 0 {
					t.Errorf("CrossClientFrees = %d, want 0", e.st.CrossClientFrees)
				}
			})
			sim.Run()
		})
	}
}

// TestForgedStreamDoneMux: on a shared multiplexed QP the DONE forger can
// also forge the *stream claim* and speak as the victim endpoint. With
// stream-claim validation (the default) the fabric-stamped source exposes
// the forgery: the message is dropped, the park survives, and repeated
// spoofs quarantine only the attacker's endpoint. In trust mode
// (TrustStreamClaims) the same message lands and frees the victim's park —
// the cross-client free the hardening exists to stop.
func TestForgedStreamDoneMux(t *testing.T) {
	for _, trust := range []bool{false, true} {
		trust := trust
		name := "validated"
		if trust {
			name = "trusting"
		}
		t.Run(name, func(t *testing.T) {
			sim := des.New()
			e := newScaleEnv(sim, 2)
			cfg := Config{Design: ReadRead, Multiplex: true, Shards: 1, Workers: 2,
				SRQDepth: 64, TrustStreamClaims: trust}
			if !trust {
				cfg.QuarantineThreshold = 2
			}
			sim.Spawn("setup", func(p *des.Proc) {
				e.startServer(p, cfg)
				e.svc.stored = pattern(32<<10, 3)
				vt, vrpc, ok := e.dialMux(p, 0, cfg)
				if !ok {
					t.Error("victim dial rejected")
					return
				}
				vt.DropDone = true
				dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
				if _, _, err := vrpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
					t.Errorf("victim get: %v", err)
					return
				}
				p.Sleep(time.Millisecond)
				if got := e.st.ParkedReplies(); got != 1 {
					t.Errorf("parked = %d before forgery, want 1", got)
					return
				}
				vstream := vt.QP().Stream()
				aq, _, ok := e.st.TryAttach(e.clients[1])
				if !ok {
					t.Error("attacker attach rejected")
					return
				}
				spoof := func() error {
					forged := &Header{XID: victimXID, Type: MsgDone}
					cqe := aq.PostAndWait(p, &ibsim.SendWQE{
						Op: ibsim.OpSend, Payload: forged.Encode(), Stream: vstream,
					})
					return cqe.Err
				}
				if err := spoof(); err != nil {
					t.Errorf("spoof send: %v", err)
					return
				}
				p.Sleep(time.Millisecond)
				if trust {
					if got := e.st.ParkedReplies(); got != 0 {
						t.Errorf("trusting server kept park = %d; the attack should have freed it", got)
					}
					if e.st.CrossClientFrees != 1 {
						t.Errorf("CrossClientFrees = %d, want 1", e.st.CrossClientFrees)
					}
					return
				}
				if got := e.st.ParkedReplies(); got != 1 {
					t.Errorf("spoofed DONE freed the victim's park: parked = %d, want 1", got)
				}
				if e.st.SpoofDrops != 1 {
					t.Errorf("SpoofDrops = %d, want 1", e.st.SpoofDrops)
				}
				if e.st.CrossClientFrees != 0 {
					t.Errorf("CrossClientFrees = %d, want 0", e.st.CrossClientFrees)
				}
				// Second spoof crosses the quarantine threshold: the attacker's
				// endpoint dies, the victim's keeps working.
				spoof()
				p.Sleep(time.Millisecond)
				if e.st.Quarantines != 1 {
					t.Errorf("Quarantines = %d, want 1", e.st.Quarantines)
				}
				if aq.Err() == nil {
					t.Error("attacker endpoint should be terminated")
				}
				if _, _, err := vrpc.Call(p, 4, []byte("still here"), oncrpc.CallOpts{}); err != nil {
					t.Errorf("victim endpoint collateral damage: %v", err)
				}
			})
			sim.Run()
		})
	}
}
