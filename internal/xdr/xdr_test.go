package xdr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint32(0xdeadbeef)
	e.Int32(-42)
	e.Uint64(0x0123456789abcdef)
	e.Int64(-1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.String("hello, nfs")
	e.Opaque([]byte{1, 2, 3})
	e.FixedOpaque([]byte{9, 8})

	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 0xdeadbeef {
		t.Errorf("uint32 = %#x", v)
	}
	if v, _ := d.Int32(); v != -42 {
		t.Errorf("int32 = %d", v)
	}
	if v, _ := d.Uint64(); v != 0x0123456789abcdef {
		t.Errorf("uint64 = %#x", v)
	}
	if v, _ := d.Int64(); v != -1<<40 {
		t.Errorf("int64 = %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Error("bool true")
	}
	if v, _ := d.Bool(); v {
		t.Error("bool false")
	}
	if v, _ := d.String(); v != "hello, nfs" {
		t.Errorf("string = %q", v)
	}
	if v, _ := d.Opaque(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("opaque = %v", v)
	}
	if v, _ := d.FixedOpaque(2); !bytes.Equal(v, []byte{9, 8}) {
		t.Errorf("fixed = %v", v)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestAlignment(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder(nil)
		e.Opaque(make([]byte, n))
		if e.Len()%4 != 0 {
			t.Errorf("opaque(%d) encodes to %d bytes, not 4-aligned", n, e.Len())
		}
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("uint32 err = %v", err)
	}
	e := NewEncoder(nil)
	e.Uint32(1000) // claims 1000 bytes follow
	d = NewDecoder(e.Bytes())
	if _, err := d.Opaque(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("opaque err = %v", err)
	}
}

func TestHostileLengthRejected(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint32(0xffffffff)
	d := NewDecoder(e.Bytes())
	if _, err := d.Opaque(); !errors.Is(err, ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", err)
	}
}

func TestQuickOpaqueRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		e := NewEncoder(nil)
		e.Opaque(b)
		e.Uint32(0x5a5a5a5a) // sentinel: padding must be consumed exactly
		d := NewDecoder(e.Bytes())
		got, err := d.Opaque()
		if err != nil || !bytes.Equal(got, b) {
			return false
		}
		s, err := d.Uint32()
		return err == nil && s == 0x5a5a5a5a && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScalarsRoundTrip(t *testing.T) {
	f := func(a uint32, b int32, c uint64, d64 int64, s string, flag bool) bool {
		e := NewEncoder(nil)
		e.Uint32(a)
		e.Int32(b)
		e.Uint64(c)
		e.Int64(d64)
		e.String(s)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		ga, _ := d.Uint32()
		gb, _ := d.Int32()
		gc, _ := d.Uint64()
		gd, _ := d.Int64()
		gs, _ := d.String()
		gf, err := d.Bool()
		return err == nil && ga == a && gb == b && gc == c && gd == d64 && gs == s && gf == flag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
