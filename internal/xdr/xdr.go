// Package xdr implements the subset of XDR (RFC 1832 / RFC 4506) external
// data representation needed by ONC RPC, the RPC/RDMA header, and NFSv3:
// big-endian 4-byte alignment, unsigned and signed 32/64-bit integers,
// booleans, variable- and fixed-length opaque data, and strings.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs off the end of the input.
var ErrShortBuffer = errors.New("xdr: short buffer")

// ErrTooLong is returned when a counted item exceeds the decoder's sanity
// limit (guarding protocol code against hostile lengths).
var ErrTooLong = errors.New("xdr: counted item too long")

// MaxOpaque bounds variable-length items accepted by the decoder. NFSv3
// READ/WRITE payloads move as RDMA chunks, not inline XDR, so inline items
// stay small; 16 MiB accommodates the largest inline transfer with margin.
const MaxOpaque = 16 << 20

func pad(n int) int { return (4 - n%4) % 4 }

// Encoder appends XDR-encoded items to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded bytes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 encodes a 64-bit signed integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes variable-length opaque data (length + bytes + padding).
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.FixedOpaque(b)
}

// FixedOpaque encodes fixed-length opaque data (bytes + padding, no length).
func (e *Encoder) FixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for i := 0; i < pad(len(b)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// String encodes an XDR string.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder consumes XDR-encoded items from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes a boolean; any non-zero value is true (per RFC 4506 §4.4
// booleans are 0 or 1, but liberal acceptance aids fuzzing).
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	return v != 0, err
}

// Opaque decodes variable-length opaque data.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxOpaque {
		return nil, fmt.Errorf("%w: %d", ErrTooLong, n)
	}
	return d.FixedOpaque(int(n))
}

// FixedOpaque decodes n bytes plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || d.Remaining() < n+pad(n) {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n + pad(n)
	return b, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}
