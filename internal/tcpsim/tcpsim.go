// Package tcpsim implements the NFS/TCP baseline transport the paper
// compares against (§5.3): ONC RPC with record marking over a stream whose
// costs are those of a kernel TCP stack — per-segment protocol processing,
// per-byte copies and checksumming on both sides, frame overhead on the
// wire, and an optional incast penalty for congested multi-client fan-in on
// a slow link (the GigE decline in Fig. 10(a)).
//
// Bulk payloads travel inline in the stream, which is exactly why TCP loses
// to RDMA here: every READ/WRITE byte crosses the server and client CPUs
// instead of being placed by the HCA.
package tcpsim

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/oncrpc"
	"repro/internal/xdr"
)

// Config tunes a stream endpoint pair.
type Config struct {
	// MSS is the payload per segment; FrameOverhead is the extra wire bytes
	// per segment (headers, preamble, interframe gap).
	MSS           int
	FrameOverhead int

	// PerSegmentCPU is protocol processing per segment, charged at each
	// side.
	PerSegmentCPU des.Duration

	// CopiesPerByte is the per-byte CPU multiplier applied to each side
	// (copies + checksum), expressed as a count of cpu.CopyPerByte charges.
	CopiesPerByte int

	// SoftirqNsPerByte is serialized receive/transmit-path processing at
	// the server (one softirq core handles the NIC queue: no RSS on the
	// paper's hosts). It is the aggregate-throughput ceiling of the NFS/TCP
	// baseline — ~2.6 ns/B pins IPoIB near 360 MB/s no matter how many
	// clients push (§5.3).
	SoftirqNsPerByte float64

	// IncastPenalty inflates wire time by penalty*(activeConns-1) on the
	// server's inbound/outbound port — a one-parameter stand-in for
	// congestion collapse on an oversubscribed link.
	IncastPenalty float64

	// PerOpCPU is RPC-layer processing per call per side.
	PerOpCPU des.Duration

	// Workers is the server worker pool size.
	Workers int

	// MaxBulk bounds a reply payload.
	MaxBulk int
}

func (c *Config) defaults() {
	if c.MSS <= 0 {
		c.MSS = 1448
	}
	if c.FrameOverhead <= 0 {
		c.FrameOverhead = 78
	}
	if c.CopiesPerByte <= 0 {
		c.CopiesPerByte = 2
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxBulk <= 0 {
		c.MaxBulk = 1 << 20
	}
}

// message is one record-marked RPC message on the wire.
type message struct {
	hdr  []byte // RPC bytes
	bulk *oncrpc.Bulk
	conn *Conn
}

// Listener is the server side of the stream transport.
type Listener struct {
	node       *ibsim.Node
	cfg        Config
	dispatcher *oncrpc.Dispatcher
	workQ      *des.Queue
	softirq    *des.Resource // serialized NIC-queue processing
	active     int           // connections with traffic in flight (incast input)

	Requests int64
}

// NewListener starts a server worker pool dispatching into d.
func NewListener(node *ibsim.Node, d *oncrpc.Dispatcher, cfg Config) *Listener {
	cfg.defaults()
	l := &Listener{node: node, cfg: cfg, dispatcher: d, workQ: des.NewQueue(node.Sim(), node.Name()+"/tcp-workq")}
	l.softirq = des.NewResource(node.Sim(), node.Name()+"/tcp-softirq", 1)
	for i := 0; i < cfg.Workers; i++ {
		node.Sim().Spawn(fmt.Sprintf("%s/nfsd-tcp-%d", node.Name(), i), l.worker)
	}
	return l
}

// Node returns the listener's host.
func (l *Listener) Node() *ibsim.Node { return l.node }

// Conn is a client connection. It implements oncrpc.Transport.
type Conn struct {
	client   *ibsim.Node
	listener *Listener
	cfg      Config
	pending  map[uint32]*des.Event
	inflight *des.Resource
	closed   bool
}

var _ oncrpc.Transport = (*Conn)(nil)

// Dial connects a client node to a listener.
func Dial(client *ibsim.Node, l *Listener) *Conn {
	return &Conn{
		client:   client,
		listener: l,
		cfg:      l.cfg,
		pending:  make(map[uint32]*des.Event),
		inflight: des.NewResource(client.Sim(), client.Name()+"/tcp-inflight", 64),
	}
}

// Close implements oncrpc.Transport.
func (c *Conn) Close() { c.closed = true }

// segments returns the number of MSS segments for n bytes.
func (c *Conn) segments(n int) int {
	return (n + c.cfg.MSS - 1) / c.cfg.MSS
}

// stackCPU charges one side's TCP stack cost for an n-byte message.
func stackCPU(p *des.Proc, node *ibsim.Node, cfg *Config, n int) {
	segs := (n + cfg.MSS - 1) / cfg.MSS
	if segs < 1 {
		segs = 1
	}
	node.CPU.Work(p, time.Duration(segs)*cfg.PerSegmentCPU)
	for i := 0; i < cfg.CopiesPerByte; i++ {
		node.CPU.Copy(p, n)
	}
	node.CPU.Syscall(p)
}

// stackCPUOverlapped runs stackCPU concurrently with fn (the wire): TCP
// processes segments as they stream, so stack time and serialization time
// overlap rather than add.
func stackCPUOverlapped(p *des.Proc, node *ibsim.Node, cfg *Config, n int, fn func()) {
	ev := des.NewEvent(p.Sim())
	p.Sim().Spawn(node.Name()+"/tcp-stack", func(sp *des.Proc) {
		stackCPU(sp, node, cfg, n)
		ev.Fire(nil)
	})
	fn()
	ev.Wait(p)
}

// serverSoftirq charges the serialized NIC-queue stage for n bytes.
func (l *Listener) serverSoftirq(p *des.Proc, n int) {
	if l.cfg.SoftirqNsPerByte <= 0 {
		return
	}
	l.softirq.Acquire(p, 1)
	l.node.CPU.Work(p, time.Duration(float64(n)*l.cfg.SoftirqNsPerByte))
	l.softirq.Release(1)
}

// wire serializes an n-byte message from src to dst, applying frame
// overhead and the incast penalty, and returns after the last byte leaves;
// delivery happens one latency later via the returned arrival time.
func (c *Conn) wire(p *des.Proc, src, dst *ibsim.Node, n int) des.Time {
	segs := c.segments(n)
	wireBytes := n + segs*c.cfg.FrameOverhead
	d := src.WireDuration(dst, wireBytes)
	if c.cfg.IncastPenalty > 0 && c.listener.active > 1 {
		d = time.Duration(float64(d) * (1 + c.cfg.IncastPenalty*float64(c.listener.active-1)))
	}
	src.TxPort().Acquire(p, 1)
	dst.RxPort().Acquire(p, 1)
	p.Sleep(d)
	dst.RxPort().Release(1)
	src.TxPort().Release(1)
	return p.Now() + des.Time(src.WireLatency(dst))
}

// Roundtrip implements oncrpc.Transport: record-marked call out, inline
// reply back, every payload byte through both CPUs.
func (c *Conn) Roundtrip(p *des.Proc, req *oncrpc.Request) (*oncrpc.Response, error) {
	if c.closed {
		return nil, fmt.Errorf("tcpsim: connection closed")
	}
	c.inflight.Acquire(p, 1)
	defer c.inflight.Release(1)
	c.listener.active++
	defer func() { c.listener.active-- }()

	c.client.CPU.Work(p, c.cfg.PerOpCPU)
	// Record mark + RPC header + inline bulk payload.
	sendLen := 4 + len(req.Header)
	if req.SendBulk != nil {
		sendLen += req.SendBulk.Len
	}
	var arrive des.Time
	stackCPUOverlapped(p, c.client, &c.cfg, sendLen, func() {
		arrive = c.wire(p, c.client, c.listener.node, sendLen)
	})
	if arrive < p.Now() {
		arrive = p.Now() // stack processing outlasted serialization
	}

	done := des.NewEvent(p.Sim())
	c.pending[req.XID] = done
	msg := &message{hdr: req.Header, bulk: req.SendBulk, conn: c}
	sim := p.Sim()
	sim.SpawnAt(arrive, "tcp-rx", func(rp *des.Proc) {
		c.listener.serverSoftirq(rp, sendLen)
		stackCPU(rp, c.listener.node, &c.cfg, sendLen)
		c.listener.workQ.Put(msg)
	})

	res := done.Wait(p).(*serverReply)
	delete(c.pending, req.XID)
	// Client-side receive processing of the reply.
	recvLen := 4 + len(res.hdr) + res.bulkLen
	stackCPU(p, c.client, &c.cfg, recvLen)
	n := 0
	if res.bulkLen > 0 && req.RecvBulk != nil {
		n = res.bulkLen
		if n > req.RecvBulk.Len {
			n = req.RecvBulk.Len
		}
		if req.RecvBulk.Data != nil && res.bulkData != nil {
			copy(req.RecvBulk.Data, res.bulkData[:n])
		}
	}
	return &oncrpc.Response{Header: res.hdr, BulkLen: n}, nil
}

type serverReply struct {
	hdr      []byte
	bulkLen  int
	bulkData []byte
}

func (l *Listener) worker(p *des.Proc) {
	for {
		v, ok := l.workQ.Get(p)
		if !ok {
			return
		}
		msg := v.(*message)
		l.handle(p, msg)
	}
}

func (l *Listener) handle(p *des.Proc, msg *message) {
	l.Requests++
	l.node.CPU.Work(p, l.cfg.PerOpCPU)
	reply, bulkOut, err := l.dispatcher.Dispatch(p, msg.hdr, oncrpc.DispatchOpts{
		Bulk:        msg.bulk,
		RecvBulkCap: l.cfg.MaxBulk,
	})
	if err != nil || reply == nil {
		// nil reply: duplicate of a call still executing — drop silently.
		return
	}
	bulkLen := 0
	var bulkData []byte
	if bulkOut != nil {
		bulkLen = bulkOut.Len
		bulkData = bulkOut.Data
	}
	replyLen := 4 + len(reply) + bulkLen
	l.serverSoftirq(p, replyLen)
	conn := msg.conn
	var arrive des.Time
	stackCPUOverlapped(p, l.node, &l.cfg, replyLen, func() {
		arrive = conn.wire(p, l.node, conn.client, replyLen)
	})
	if arrive < p.Now() {
		arrive = p.Now()
	}
	xid := xidOf(reply)
	p.Sim().SpawnAt(arrive, "tcp-reply-rx", func(rp *des.Proc) {
		if done, ok := conn.pending[xid]; ok && !done.Fired() {
			done.Fire(&serverReply{hdr: reply, bulkLen: bulkLen, bulkData: bulkData})
		}
	})
}

// xidOf extracts the XID from a marshaled RPC message.
func xidOf(msg []byte) uint32 {
	d := xdr.NewDecoder(msg)
	x, err := d.Uint32()
	if err != nil {
		return 0
	}
	return x
}
