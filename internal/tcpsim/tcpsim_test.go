package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/oncrpc"
)

// echoSvc returns args as results and reflects bulk.
type echoSvc struct{ stored []byte }

func (s *echoSvc) Name() string    { return "echo" }
func (s *echoSvc) Program() uint32 { return 900 }
func (s *echoSvc) Version() uint32 { return 1 }
func (s *echoSvc) Handle(p *des.Proc, req *oncrpc.ServerRequest) *oncrpc.ServerResponse {
	switch req.Header.Proc {
	case 1: // PUT
		if req.Bulk != nil && req.Bulk.Data != nil {
			s.stored = append([]byte(nil), req.Bulk.Data[:req.Bulk.Len]...)
		}
		return &oncrpc.ServerResponse{Stat: oncrpc.Success}
	case 2: // GET
		return &oncrpc.ServerResponse{Stat: oncrpc.Success, Bulk: oncrpc.NewBulk(s.stored)}
	}
	return &oncrpc.ServerResponse{Stat: oncrpc.Success, Results: append([]byte(nil), req.Args...)}
}

func gigeNode(fab *ibsim.Fabric, name string) *ibsim.Node {
	return fab.AddNode(ibsim.NodeConfig{
		Name: name, Cores: 4,
		PortBandwidth: 125e6, PortLatency: 50 * time.Microsecond,
		CopyNsPerByte: 0.33,
	})
}

func TestStreamRPCRoundTrip(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	cn := gigeNode(fab, "client")
	sn := gigeNode(fab, "server")
	svc := &echoSvc{}
	d := oncrpc.NewDispatcher()
	d.Register(svc)
	l := NewListener(sn, d, Config{})
	conn := Dial(cn, l)
	rpc := oncrpc.NewClient(conn, 900, 1, oncrpc.Auth{})
	sim.Spawn("client", func(p *des.Proc) {
		res, _, err := rpc.Call(p, 3, []byte("over tcp"), oncrpc.CallOpts{})
		if err != nil || string(res) != "over tcp" {
			t.Errorf("echo: %q %v", res, err)
		}
		payload := make([]byte, 32<<10)
		for i := range payload {
			payload[i] = byte(i * 3)
		}
		if _, _, err := rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)}); err != nil {
			t.Errorf("put: %v", err)
		}
		dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
		_, n, err := rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		if err != nil || n != 32<<10 {
			t.Errorf("get: n=%d err=%v", n, err)
		}
		if !bytes.Equal(dst.Data, payload) {
			t.Error("bulk corrupted over stream")
		}
	})
	sim.Run()
}

func TestGigELinkBoundThroughput(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, false)
	cn := gigeNode(fab, "client")
	sn := gigeNode(fab, "server")
	svc := &echoSvc{stored: make([]byte, 1<<20)}
	d := oncrpc.NewDispatcher()
	d.Register(svc)
	l := NewListener(sn, d, Config{})
	conn := Dial(cn, l)
	rpc := oncrpc.NewClient(conn, 900, 1, oncrpc.Auth{})
	var moved int64
	var elapsed des.Time
	sim.Spawn("client", func(p *des.Proc) {
		start := p.Now()
		for i := 0; i < 32; i++ {
			dst := &oncrpc.Bulk{Len: 1 << 20}
			_, n, err := rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			moved += int64(n)
		}
		elapsed = p.Now() - start
	})
	sim.Run()
	mbps := float64(moved) / 1e6 / elapsed.Seconds()
	// Payload throughput on a 125 MB/s link with frame overhead: ~105-118.
	if mbps < 95 || mbps > 120 {
		t.Fatalf("GigE stream throughput = %.1f MB/s, want ~105-118", mbps)
	}
}

func TestIncastPenaltyDegradesAggregate(t *testing.T) {
	measure := func(clients int, penalty float64) float64 {
		sim := des.New()
		fab := ibsim.NewFabric(sim, false)
		sn := gigeNode(fab, "server")
		svc := &echoSvc{stored: make([]byte, 1<<20)}
		d := oncrpc.NewDispatcher()
		d.Register(svc)
		l := NewListener(sn, d, Config{IncastPenalty: penalty})
		var moved int64
		var last des.Time
		for i := 0; i < clients; i++ {
			cn := gigeNode(fab, "client")
			conn := Dial(cn, l)
			rpc := oncrpc.NewClient(conn, 900, 1, oncrpc.Auth{})
			sim.Spawn("c", func(p *des.Proc) {
				for j := 0; j < 8; j++ {
					dst := &oncrpc.Bulk{Len: 1 << 20}
					_, n, err := rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
					if err != nil {
						t.Errorf("get: %v", err)
						return
					}
					moved += int64(n)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		sim.Run()
		return float64(moved) / 1e6 / last.Seconds()
	}
	one := measure(1, 0.08)
	four := measure(4, 0.08)
	if four >= one {
		t.Fatalf("incast: 4 clients (%.1f MB/s) should be below 1 client (%.1f MB/s)", four, one)
	}
}

func TestCPUCostScalesWithBytes(t *testing.T) {
	sim := des.New()
	fab := ibsim.NewFabric(sim, false)
	cn := fab.AddNode(ibsim.NodeConfig{Name: "c", Cores: 2, PortBandwidth: 900e6, CopyNsPerByte: 1})
	sn := fab.AddNode(ibsim.NodeConfig{Name: "s", Cores: 2, PortBandwidth: 900e6, CopyNsPerByte: 1})
	svc := &echoSvc{stored: make([]byte, 1<<20)}
	d := oncrpc.NewDispatcher()
	d.Register(svc)
	l := NewListener(sn, d, Config{})
	conn := Dial(cn, l)
	rpc := oncrpc.NewClient(conn, 900, 1, oncrpc.Auth{})
	sim.Spawn("client", func(p *des.Proc) {
		sn.CPU.ResetWindow()
		for i := 0; i < 4; i++ {
			dst := &oncrpc.Bulk{Len: 1 << 20}
			rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		}
		// 4 MiB * 2 copies * 1ns/B = ~8.4ms of server CPU minimum.
		if busy := sn.CPU.BusySeconds(); busy < 0.008 {
			t.Errorf("server CPU busy = %.4fs, want >= 0.008 (copies charged)", busy)
		}
	})
	sim.Run()
}
