// Package cpu models the processors of a simulated host.
//
// A Model is a fixed pool of cores (a des.Resource). Simulated software
// charges processing time against it: protocol work, data copies, interrupt
// handling. Because cores are a contended resource, a host whose per-byte
// copy cost exceeds what its cores can stream becomes CPU-bound — which is
// exactly how the paper's NFS/TCP baseline saturates (§5.3) and why the
// Read-Read client burns 24% CPU at 8 threads while the zero-copy Read-Write
// client stays flat (§5.1).
package cpu

import (
	"time"

	"repro/internal/des"
)

// Model is the CPU complex of one simulated host.
type Model struct {
	sim   *des.Sim
	cores *des.Resource

	// Cost parameters. All may be zero for an idealized host.
	CopyNsPerByte    float64      // memcpy cost per byte, in nanoseconds (cache-cold)
	InterruptCost    des.Duration // per hardware interrupt (incl. context switch)
	SyscallCost      des.Duration // per user/kernel crossing
	MigrationCost    des.Duration // per cross-CPU completion handoff (cache refill + IPI)
	windowStart      des.Time
	interrupts       int64
	migrations       int64
	localWakes       int64
	busyAtWindowZero float64
}

// New creates a CPU model with the given core count.
func New(sim *des.Sim, host string, cores int) *Model {
	return &Model{sim: sim, cores: des.NewResource(sim, host+"/cpu", cores)}
}

// Cores returns the number of cores.
func (m *Model) Cores() int { return m.cores.Capacity() }

// Work occupies one core for d. It is the basic "run code for this long"
// operation; the caller blocks for at least d (longer under contention).
func (m *Model) Work(p *des.Proc, d des.Duration) {
	if d <= 0 {
		return
	}
	m.cores.Use(p, 1, d)
}

// Copy charges the CPU for moving n bytes through a core (one memcpy).
func (m *Model) Copy(p *des.Proc, n int) {
	m.Work(p, time.Duration(float64(n)*m.CopyNsPerByte))
}

// CopyCost returns the modelled duration of copying n bytes without
// charging it, for planning/accounting paths.
func (m *Model) CopyCost(n int) des.Duration {
	return time.Duration(float64(n) * m.CopyNsPerByte)
}

// Interrupt charges one hardware interrupt's worth of processing and counts
// it. Interrupt elimination is one of the Read-Write design's claimed wins,
// so the count is part of the experiment output.
func (m *Model) Interrupt(p *des.Proc) {
	m.interrupts++
	m.Work(p, m.InterruptCost)
}

// Syscall charges one kernel crossing.
func (m *Model) Syscall(p *des.Proc) {
	m.Work(p, m.SyscallCost)
}

// PinFor maps an ordinal (shard id, worker id) onto a CPU number, the
// round-robin placement an IRQ/completion-vector table uses.
func (m *Model) PinFor(i int) int {
	if i < 0 {
		return 0
	}
	return i % m.Cores()
}

// Migrate charges the cost of handing work completed on complCPU to code
// running on runCPU. When the two differ the waking thread finds its request
// state cache-cold on another core and pays MigrationCost (the xprtrdma
// "spread reply processing" effect: completion steering decides whether reply
// handling is a warm-cache local wake or a cross-CPU migration). Same-CPU
// handoffs are free and counted separately.
func (m *Model) Migrate(p *des.Proc, complCPU, runCPU int) {
	if complCPU == runCPU {
		m.localWakes++
		return
	}
	m.migrations++
	m.Work(p, m.MigrationCost)
}

// Migrations returns cross-CPU completion handoffs since the last
// ResetWindow.
func (m *Model) Migrations() int64 { return m.migrations }

// LocalWakes returns same-CPU completion handoffs since the last
// ResetWindow.
func (m *Model) LocalWakes() int64 { return m.localWakes }

// Interrupts returns the number of interrupts taken since the last
// ResetWindow.
func (m *Model) Interrupts() int64 { return m.interrupts }

// ResetWindow starts a new measurement window for Utilization and the
// interrupt counter.
func (m *Model) ResetWindow() {
	m.windowStart = m.sim.Now()
	m.busyAtWindowZero = m.cores.BusySeconds()
	m.interrupts = 0
	m.migrations = 0
	m.localWakes = 0
}

// Utilization returns mean CPU utilization (0..1 across all cores) over the
// current measurement window.
func (m *Model) Utilization() float64 {
	elapsed := des.Time(m.sim.Now() - m.windowStart).Seconds()
	if elapsed <= 0 {
		return 0
	}
	busy := m.cores.BusySeconds() - m.busyAtWindowZero
	return busy / (float64(m.Cores()) * elapsed)
}

// BusySeconds returns core-seconds consumed in the current window.
func (m *Model) BusySeconds() float64 {
	return m.cores.BusySeconds() - m.busyAtWindowZero
}

// TotalBusySeconds returns cumulative core-seconds consumed since the model
// was created, independent of ResetWindow. Telemetry samples this as a rate:
// d(busy-seconds)/dt divided by core count is windowed utilization, immune
// to the measurement-window resets that make BusySeconds jump backwards.
func (m *Model) TotalBusySeconds() float64 {
	return m.cores.BusySeconds()
}

// UtilizationSince returns mean CPU utilization (0..1 across all cores)
// over [since, now), independent of the ResetWindow state. This is the
// windowing every other resource (ports, TPT engine, disk) uses, so
// cluster-level snapshots can apply one consistent `since` across all
// utilization figures.
func (m *Model) UtilizationSince(since des.Time) float64 {
	return m.cores.Utilization(since)
}
