package cpu

import (
	"testing"
	"time"

	"repro/internal/des"
)

func TestWorkContendsOnCores(t *testing.T) {
	sim := des.New()
	m := New(sim, "host", 2)
	var last des.Time
	for i := 0; i < 4; i++ {
		sim.Spawn("w", func(p *des.Proc) {
			m.Work(p, 10*time.Millisecond)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	sim.Run()
	// 4 tasks of 10ms on 2 cores: 20ms total.
	if last != des.Time(20*time.Millisecond) {
		t.Fatalf("finished at %v, want 20ms", last)
	}
}

func TestUtilizationWindow(t *testing.T) {
	sim := des.New()
	m := New(sim, "host", 4)
	sim.Spawn("w", func(p *des.Proc) {
		m.Work(p, 100*time.Millisecond)
		m.ResetWindow()
		m.Work(p, 50*time.Millisecond)
		p.Sleep(50 * time.Millisecond)
		// Window: 100ms elapsed, 50ms busy on 4 cores = 12.5%.
		if u := m.Utilization(); u < 0.124 || u > 0.126 {
			t.Errorf("utilization = %v, want 0.125", u)
		}
	})
	sim.Run()
}

func TestCopyCostFractionalNs(t *testing.T) {
	sim := des.New()
	m := New(sim, "host", 1)
	m.CopyNsPerByte = 0.5
	sim.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		m.Copy(p, 1<<20)
		elapsed := p.Now() - start
		want := des.Time(1 << 19) // 1 MiB * 0.5ns
		if elapsed != want {
			t.Errorf("copy took %v, want %v", elapsed, want)
		}
	})
	sim.Run()
}

func TestInterruptsCountedAndCharged(t *testing.T) {
	sim := des.New()
	m := New(sim, "host", 1)
	m.InterruptCost = 5 * time.Microsecond
	sim.Spawn("w", func(p *des.Proc) {
		m.ResetWindow()
		for i := 0; i < 10; i++ {
			m.Interrupt(p)
		}
		if m.Interrupts() != 10 {
			t.Errorf("interrupts = %d", m.Interrupts())
		}
		if b := m.BusySeconds(); b < 49e-6 || b > 51e-6 {
			t.Errorf("busy = %v, want 50µs", b)
		}
	})
	sim.Run()
}

func TestZeroCostOpsFree(t *testing.T) {
	sim := des.New()
	m := New(sim, "host", 1)
	sim.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		m.Copy(p, 1<<20)
		m.Interrupt(p)
		m.Syscall(p)
		m.Work(p, 0)
		if p.Now() != start {
			t.Error("zero-cost model should charge nothing")
		}
	})
	sim.Run()
}
