// Package memreg implements the paper's memory registration strategies for
// the RPC/RDMA transport (§4.3):
//
//   - Regular: dynamic per-operation registration — pin, translate and
//     install a TPT entry in the critical path of every RPC.
//   - FMR: Mellanox fast memory registration — steering tags and TPT slots
//     pre-allocated in a pool at initialization; mapping a buffer costs
//     pin/translate only. Regions larger than the pool's maximum fall back
//     to regular registration, transparently.
//   - AllPhysical: the global steering tag available to privileged
//     consumers. No per-operation registration at all, but buffers must be
//     addressed by physically contiguous runs, so a virtually contiguous
//     record fragments into multiple chunk segments — the cause of the
//     paper's Fig. 9(b) WRITE degradation under the IRD/ORD limit.
//   - Cache: the paper's proposed slab-backed buffer registration cache —
//     allocation and registration are fused, buffers come from per-size
//     free lists and stay registered across operations, so a hit costs
//     nothing. Keyed by buffer identity, not virtual address, avoiding the
//     registration-cache correctness problem, and bounded so the slab can
//     be reclaimed.
//
// A Manager exposes two paths: Get/Put for transport-owned staging buffers
// (where the cache applies), and RegisterExternal for caller-owned memory
// (the zero-copy direct-I/O path, where a cache keyed by allocation cannot
// apply and the dynamic strategy of the mode is used).
package memreg

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ibsim"
)

// Mode selects a registration strategy.
type Mode int

// Registration modes.
const (
	Regular Mode = iota
	FMR
	AllPhysical
	Cache
)

func (m Mode) String() string {
	switch m {
	case Regular:
		return "register"
	case FMR:
		return "fmr"
	case AllPhysical:
		return "all-physical"
	case Cache:
		return "cache"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Segment is one RDMA-addressable extent of a registration: what goes into
// an RPC/RDMA chunk segment (steering tag, address, length).
type Segment struct {
	Rkey uint32
	Addr uint64
	Len  int
}

// Registration is a live registration of some buffer range.
type Registration struct {
	segs  []Segment
	mr    *ibsim.MR        // non-nil for regular registrations
	fmr   *ibsim.FMRHandle // non-nil when mapped through an FMR handle
	owner *Manager
}

// Segments returns the RDMA-addressable extents covering the registered
// range, in order.
func (r *Registration) Segments() []Segment { return r.segs }

// Config tunes a Manager.
type Config struct {
	Mode Mode

	// FMRPoolSize is the number of pre-allocated FMR handles; FMRMaxLen is
	// the largest mappable region per handle (paper: pool 512 × 1 MiB).
	FMRPoolSize int
	FMRMaxLen   int

	// CacheMaxBytes bounds the registration cache slab; the oldest
	// registered buffers are evicted (deregistered and freed) beyond it.
	CacheMaxBytes int64
}

func (c *Config) defaults() {
	if c.FMRPoolSize <= 0 {
		c.FMRPoolSize = 512
	}
	if c.FMRMaxLen <= 0 {
		c.FMRMaxLen = 1 << 20
	}
	if c.CacheMaxBytes <= 0 {
		c.CacheMaxBytes = 256 << 20
	}
}

// Manager provides registered bulk buffers for one endpoint under a chosen
// strategy.
type Manager struct {
	hca  *ibsim.HCA
	mem  *ibsim.Memory
	cfg  Config
	stat Stats

	fmrFree []*ibsim.FMRHandle

	slab      map[int][]*Chunk // size class -> free registered chunks
	slabBytes int64
	slabSeq   int64
}

// Stats counts strategy activity for the experiment reports.
type Stats struct {
	Registers   int64 // full dynamic registrations
	FMRMaps     int64
	FMRFallback int64 // FMR requests served by regular registration
	CacheHits   int64
	CacheMisses int64
	Evictions   int64
}

// NewManager creates a Manager for the node owning hca. For FMR mode the
// handle pool is pre-allocated here (off the critical path), which is why a
// proc context is required.
func NewManager(p *des.Proc, node *ibsim.Node, cfg Config) *Manager {
	cfg.defaults()
	m := &Manager{
		hca:  node.HCA,
		mem:  node.Mem,
		cfg:  cfg,
		slab: make(map[int][]*Chunk),
	}
	switch cfg.Mode {
	case FMR:
		for i := 0; i < cfg.FMRPoolSize; i++ {
			m.fmrFree = append(m.fmrFree, node.HCA.NewFMRHandle(p, cfg.FMRMaxLen))
		}
	case AllPhysical:
		node.HCA.EnableGlobalRkey()
	}
	return m
}

// Mode returns the configured strategy.
func (m *Manager) Mode() Mode { return m.cfg.Mode }

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stat }

// sizeClass rounds a request up to its slab class (powers of two ≥ 4 KiB).
func sizeClass(size int) int {
	c := 4096
	for c < size {
		c <<= 1
	}
	return c
}

// Chunk is a transport-owned staging buffer plus its registration.
type Chunk struct {
	Buf    *ibsim.Buffer
	Reg    *Registration // nil until registered
	class  int
	length int
	access ibsim.Access
	seq    int64
}

// Data returns the materialized bytes of the chunk (nil in phantom mode).
func (c *Chunk) Data() []byte { return c.Buf.Data() }

// Get returns a buffer of at least size bytes registered with the given
// access, charging whatever the mode costs. It is GetUnregistered followed
// by RegisterChunk.
func (m *Manager) Get(p *des.Proc, size int, access ibsim.Access) *Chunk {
	c := m.GetUnregistered(p, size, access)
	m.RegisterChunk(p, c, 0)
	return c
}

// GetUnregistered allocates a staging buffer without (necessarily) paying
// registration yet — the paper's server flow allocates at RPC receipt and
// registers when control returns from the file system. Under the cache
// mode a slab hit arrives already registered, which is the whole point.
func (m *Manager) GetUnregistered(p *des.Proc, size int, access ibsim.Access) *Chunk {
	if m.cfg.Mode == Cache {
		return m.cacheGet(p, size, access)
	}
	// Staging buffers are always materialized: they may carry protocol
	// bytes (long calls/replies) that must survive phantom-data mode.
	buf := m.mem.AllocMaterialized(size)
	return &Chunk{Buf: buf, access: access, length: size}
}

// RegisterChunk ensures the chunk is registered, charging the mode's cost
// if it is not already. n bounds the registered prefix: the paper's server
// registers exactly the bytes the file system produced, not the whole
// staging allocation. Cache-mode chunks keep their full-class registration
// (that is what makes them reusable); n <= 0 registers the full length.
func (m *Manager) RegisterChunk(p *des.Proc, c *Chunk, n int) {
	if c.Reg != nil {
		return
	}
	if n <= 0 || n > c.length {
		n = c.length
	}
	c.Reg = m.register(p, c.Buf, 0, n, c.access)
}

// Put releases a chunk obtained from Get or GetUnregistered.
func (m *Manager) Put(p *des.Proc, c *Chunk) {
	if m.cfg.Mode == Cache {
		m.cachePut(p, c)
		return
	}
	if c.Reg != nil {
		m.deregister(p, c.Reg)
	}
	m.mem.Free(c.Buf)
}

// RegisterExternal registers caller-owned memory (the direct-I/O path).
// The cache mode cannot apply here — it is allocation-linked by design — so
// it falls back to dynamic registration.
func (m *Manager) RegisterExternal(p *des.Proc, buf *ibsim.Buffer, off, length int, access ibsim.Access) *Registration {
	mode := m.cfg.Mode
	if mode == Cache {
		mode = Regular
	}
	return m.registerMode(p, mode, buf, off, length, access)
}

// DeregisterExternal releases a RegisterExternal registration.
func (m *Manager) DeregisterExternal(p *des.Proc, r *Registration) {
	m.deregister(p, r)
}

func (m *Manager) register(p *des.Proc, buf *ibsim.Buffer, off, length int, access ibsim.Access) *Registration {
	return m.registerMode(p, m.cfg.Mode, buf, off, length, access)
}

func (m *Manager) registerMode(p *des.Proc, mode Mode, buf *ibsim.Buffer, off, length int, access ibsim.Access) *Registration {
	switch mode {
	case FMR:
		if length <= m.cfg.FMRMaxLen && len(m.fmrFree) > 0 {
			h := m.fmrFree[len(m.fmrFree)-1]
			m.fmrFree = m.fmrFree[:len(m.fmrFree)-1]
			mr := h.Map(p, buf, off, length, access)
			m.stat.FMRMaps++
			return &Registration{
				segs:  []Segment{{Rkey: mr.Rkey(), Addr: mr.Start(), Len: length}},
				fmr:   h,
				owner: m,
			}
		}
		m.stat.FMRFallback++
		fallthrough
	case Regular, Cache:
		mr := m.hca.Register(p, buf, off, length, access)
		m.stat.Registers++
		return &Registration{
			segs:  []Segment{{Rkey: mr.Rkey(), Addr: mr.Start(), Len: length}},
			mr:    mr,
			owner: m,
		}
	case AllPhysical:
		// No per-operation cost: the global steering tag addresses pinned
		// physical memory directly, one segment per physically contiguous
		// run.
		g := m.hca.GlobalMR()
		if g == nil {
			panic("memreg: all-physical mode without global rkey enabled")
		}
		var segs []Segment
		pos := off
		for _, run := range buf.PhysicalRuns(off, length) {
			segs = append(segs, Segment{Rkey: g.Rkey(), Addr: buf.Addr(pos), Len: run})
			pos += run
		}
		return &Registration{segs: segs, owner: m}
	}
	panic("memreg: unknown mode")
}

func (m *Manager) deregister(p *des.Proc, r *Registration) {
	switch {
	case r.fmr != nil:
		r.fmr.Unmap(p)
		m.fmrFree = append(m.fmrFree, r.fmr)
		r.fmr = nil
	case r.mr != nil:
		m.hca.Deregister(p, r.mr)
		r.mr = nil
	}
	r.segs = nil
}

// cacheGet serves a buffer from the slab, registering only on miss.
// Cached buffers whose existing registration lacks the requested access are
// re-registered (counted as a miss): in practice the server requests the
// same local-only access every time, so steady state is all hits.
func (m *Manager) cacheGet(p *des.Proc, size int, access ibsim.Access) *Chunk {
	class := sizeClass(size)
	free := m.slab[class]
	for i := len(free) - 1; i >= 0; i-- {
		c := free[i]
		if c.access&access == access {
			m.slab[class] = append(free[:i], free[i+1:]...)
			m.slabBytes -= int64(class)
			m.stat.CacheHits++
			return c
		}
	}
	m.stat.CacheMisses++
	buf := m.mem.AllocMaterialized(class)
	mr := m.hca.Register(p, buf, 0, class, access)
	m.stat.Registers++
	reg := &Registration{
		segs:  []Segment{{Rkey: mr.Rkey(), Addr: mr.Start(), Len: class}},
		mr:    mr,
		owner: m,
	}
	return &Chunk{Buf: buf, Reg: reg, class: class, length: class, access: access}
}

// cachePut returns a chunk to the slab, evicting the oldest entries beyond
// the byte bound (the link to the system slab reclaim the paper describes).
func (m *Manager) cachePut(p *des.Proc, c *Chunk) {
	m.slabSeq++
	c.seq = m.slabSeq
	m.slab[c.class] = append(m.slab[c.class], c)
	m.slabBytes += int64(c.class)
	for m.slabBytes > m.cfg.CacheMaxBytes {
		m.evictOldest(p)
	}
}

func (m *Manager) evictOldest(p *des.Proc) {
	var victimClass int
	var victimIdx int
	var victim *Chunk
	for class, list := range m.slab {
		for i, c := range list {
			if victim == nil || c.seq < victim.seq {
				victim, victimClass, victimIdx = c, class, i
			}
		}
	}
	if victim == nil {
		return
	}
	list := m.slab[victimClass]
	m.slab[victimClass] = append(list[:victimIdx], list[victimIdx+1:]...)
	m.slabBytes -= int64(victimClass)
	m.deregister(p, victim.Reg)
	m.mem.Free(victim.Buf)
	m.stat.Evictions++
}

// CachedBytes returns the bytes currently held registered in the slab.
func (m *Manager) CachedBytes() int64 { return m.slabBytes }
