package memreg

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
)

// costNode builds a node with visible registration costs so strategy cost
// differences are measurable in virtual time.
func costNode(sim *des.Sim) *ibsim.Node {
	fab := ibsim.NewFabric(sim, false)
	return fab.AddNode(ibsim.NodeConfig{
		Name: "n", Cores: 4,
		RegPerPageCPU: 500 * time.Nanosecond,
		RegBase:       10 * time.Microsecond, RegPerPageBus: 300 * time.Nanosecond,
		DeregPerPageCPU: 200 * time.Nanosecond,
		DeregBase:       5 * time.Microsecond, DeregPerPageBus: 150 * time.Nanosecond,
		FMRMapCPU:   300 * time.Nanosecond,
		MeanPhysRun: 32 << 10,
	})
}

// timeOp measures the virtual time an operation takes inside a proc.
func timeOp(t *testing.T, node *ibsim.Node, fn func(p *des.Proc)) des.Duration {
	t.Helper()
	var took des.Duration
	sim := node.Sim()
	sim.Spawn("op", func(p *des.Proc) {
		start := p.Now()
		fn(p)
		took = des.Duration(p.Now() - start)
	})
	sim.Run()
	return took
}

func TestRegularChargesFullCost(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	took := timeOp(t, node, func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: Regular})
		c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
		if len(c.Reg.Segments()) != 1 {
			t.Errorf("segments = %d, want 1", len(c.Reg.Segments()))
		}
		m.Put(p, c)
	})
	// 32 pages * 500ns + 20µs bus + dereg 32*200ns + 10µs ≈ 52.4µs
	if took < 40*time.Microsecond {
		t.Fatalf("regular register+deregister took %v, expected substantial cost", took)
	}
}

func TestFMRCheaperThanRegular(t *testing.T) {
	simR := des.New()
	nodeR := costNode(simR)
	regular := timeOp(t, nodeR, func(p *des.Proc) {
		m := NewManager(p, nodeR, Config{Mode: Regular})
		for i := 0; i < 10; i++ {
			c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
			m.Put(p, c)
		}
	})
	simF := des.New()
	nodeF := costNode(simF)
	var fmrOnly des.Duration
	simF.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, nodeF, Config{Mode: FMR, FMRPoolSize: 8, FMRMaxLen: 1 << 20})
		start := p.Now()
		for i := 0; i < 10; i++ {
			c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
			m.Put(p, c)
		}
		fmrOnly = des.Duration(p.Now() - start)
		if m.Stats().FMRMaps != 10 {
			t.Errorf("fmr maps = %d, want 10", m.Stats().FMRMaps)
		}
	})
	simF.Run()
	if fmrOnly >= regular {
		t.Fatalf("FMR (%v) should beat regular (%v)", fmrOnly, regular)
	}
}

func TestFMRFallbackForLargeRegions(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: FMR, FMRPoolSize: 4, FMRMaxLen: 64 << 10})
		c := m.Get(p, 1<<20, ibsim.AccessLocalWrite) // larger than FMR max
		if m.Stats().FMRFallback != 1 || m.Stats().Registers != 1 {
			t.Errorf("stats = %+v, want fallback to regular", m.Stats())
		}
		m.Put(p, c)
	})
	sim.Run()
}

func TestFMRPoolExhaustionFallsBack(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: FMR, FMRPoolSize: 2, FMRMaxLen: 1 << 20})
		a := m.Get(p, 4096, ibsim.AccessLocalWrite)
		b := m.Get(p, 4096, ibsim.AccessLocalWrite)
		c := m.Get(p, 4096, ibsim.AccessLocalWrite) // pool exhausted
		if m.Stats().FMRFallback != 1 {
			t.Errorf("fallbacks = %d, want 1", m.Stats().FMRFallback)
		}
		m.Put(p, a)
		m.Put(p, b)
		m.Put(p, c)
		d := m.Get(p, 4096, ibsim.AccessLocalWrite) // handles returned
		if m.Stats().FMRMaps != 3 {
			t.Errorf("maps = %d, want 3", m.Stats().FMRMaps)
		}
		m.Put(p, d)
	})
	sim.Run()
}

func TestAllPhysicalZeroCostButFragmented(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	var segs int
	took := timeOp(t, node, func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: AllPhysical})
		c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
		segs = len(c.Reg.Segments())
		total := 0
		for _, s := range c.Reg.Segments() {
			if s.Rkey != node.HCA.GlobalMR().Rkey() {
				t.Error("segment not using global rkey")
			}
			total += s.Len
		}
		if total != 128<<10 {
			t.Errorf("segments cover %d bytes, want %d", total, 128<<10)
		}
		m.Put(p, c)
	})
	if took > time.Microsecond {
		t.Fatalf("all-physical took %v, want ~0", took)
	}
	if segs < 2 {
		t.Fatalf("segments = %d, want fragmentation into multiple runs", segs)
	}
}

func TestCacheHitsAfterWarmup(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	var cold, warm des.Duration
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: Cache})
		start := p.Now()
		c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
		cold = des.Duration(p.Now() - start)
		m.Put(p, c)
		start = p.Now()
		for i := 0; i < 10; i++ {
			c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
			m.Put(p, c)
		}
		warm = des.Duration(p.Now() - start)
		st := m.Stats()
		if st.CacheMisses != 1 || st.CacheHits != 10 {
			t.Errorf("stats = %+v, want 1 miss / 10 hits", st)
		}
	})
	sim.Run()
	if warm != 0 {
		t.Fatalf("warm path took %v, want zero cost", warm)
	}
	if cold == 0 {
		t.Fatal("cold path should cost a registration")
	}
}

func TestCacheBoundedAndEvicts(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: Cache, CacheMaxBytes: 256 << 10})
		var chunks []*Chunk
		for i := 0; i < 8; i++ {
			chunks = append(chunks, m.Get(p, 64<<10, ibsim.AccessLocalWrite))
		}
		for _, c := range chunks {
			m.Put(p, c)
		}
		if m.CachedBytes() > 256<<10 {
			t.Errorf("cached bytes = %d exceeds bound", m.CachedBytes())
		}
		if m.Stats().Evictions == 0 {
			t.Error("expected evictions beyond the byte bound")
		}
	})
	sim.Run()
}

func TestCacheNeverExposesBuffersRemotely(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: Cache})
		for i := 0; i < 5; i++ {
			c := m.Get(p, 128<<10, ibsim.AccessLocalWrite)
			m.Put(p, c)
		}
		if node.HCA.RemoteExposedBytes() != 0 {
			t.Errorf("registration cache exposed %d bytes remotely", node.HCA.RemoteExposedBytes())
		}
	})
	sim.Run()
}

func TestCacheAccessMismatchReRegisters(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: Cache})
		c := m.Get(p, 4096, ibsim.AccessLocalWrite)
		m.Put(p, c)
		c2 := m.Get(p, 4096, ibsim.AccessLocalWrite|ibsim.AccessRemoteRead)
		if m.Stats().CacheMisses != 2 {
			t.Errorf("misses = %d, want 2 (access mismatch must not hit)", m.Stats().CacheMisses)
		}
		m.Put(p, c2)
	})
	sim.Run()
}

func TestExternalRegistrationModes(t *testing.T) {
	for _, mode := range []Mode{Regular, FMR, AllPhysical, Cache} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sim := des.New()
			node := costNode(sim)
			sim.Spawn("op", func(p *des.Proc) {
				m := NewManager(p, node, Config{Mode: mode})
				user := node.Mem.Alloc(256 << 10)
				r := m.RegisterExternal(p, user, 4096, 128<<10, ibsim.AccessRemoteWrite)
				total := 0
				for _, s := range r.Segments() {
					total += s.Len
				}
				if total != 128<<10 {
					t.Errorf("segments cover %d, want %d", total, 128<<10)
				}
				m.DeregisterExternal(p, r)
			})
			sim.Run()
		})
	}
}

func TestSizeClassProperty(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n) + 1
		c := sizeClass(size)
		return c >= size && c >= 4096 && (c&(c-1)) == 0 && (c == 4096 || c/2 < size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCacheAlwaysCoversRequest(t *testing.T) {
	sim := des.New()
	node := costNode(sim)
	sim.Spawn("op", func(p *des.Proc) {
		m := NewManager(p, node, Config{Mode: Cache, CacheMaxBytes: 1 << 20})
		rng := des.NewRand(99)
		for i := 0; i < 300; i++ {
			size := 1 + rng.Intn(512<<10)
			c := m.Get(p, size, ibsim.AccessLocalWrite)
			if c.Buf.Size < size {
				t.Errorf("buffer %d < requested %d", c.Buf.Size, size)
			}
			if !c.Reg.mr.Valid() {
				t.Error("cache returned invalid registration")
			}
			m.Put(p, c)
		}
	})
	sim.Run()
}
