package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{})
	tr.Span(0, 10, LayerDES, KindBlocked, "t", "n", 1, 0)
	tr.Begin(0, LayerIbsim, KindWQE, "t", "n", 1, 0)
	tr.End(1, LayerIbsim, KindWQE, "t", "n", 1, 0)
	tr.Instant(2, LayerRPC, KindTimeout, "t", "n", 1, 0)
	tr.Observe("h", 1.5)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil ||
		tr.Histogram("h") != nil || tr.Histograms() != nil {
		t.Fatal("nil tracer must behave as empty")
	}
}

func TestRingWrapKeepsNewestInOrder(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Instant(int64(i), LayerDES, KindSpawn, "t", "n", uint64(i), 0)
	}
	if got, want := tr.Len(), 4; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := tr.Dropped(), uint64(6); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.T != want {
			t.Fatalf("event %d has T=%d, want %d (oldest-first order)", i, e.T, want)
		}
	}
}

func TestEventsBeforeWrap(t *testing.T) {
	tr := New(8)
	tr.Instant(1, LayerDES, KindSpawn, "t", "a", 1, 0)
	tr.Instant(2, LayerDES, KindSpawn, "t", "b", 2, 0)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].T != 1 || evs[1].T != 2 {
		t.Fatalf("Events = %+v, want two events in order", evs)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestEmitIsAllocationFree(t *testing.T) {
	tr := New(64)
	ev := Event{T: 1, Track: "t", Name: "n", Layer: LayerIbsim, Kind: KindWQE, Phase: PhaseBegin}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(ev)
		tr.Span(0, 5, LayerDES, KindBlocked, "t", "n", 7, 0)
		tr.Instant(3, LayerRPC, KindDoorbell, "t", "n", 7, 0)
	})
	if allocs != 0 {
		t.Fatalf("hot-path emission allocates %.1f times per run, want 0", allocs)
	}
}

func TestHistogramsSortedAndNamed(t *testing.T) {
	tr := New(4)
	tr.Observe("zeta", 10)
	tr.Observe("alpha", 20)
	tr.Observe("zeta", 30)
	hs := tr.Histograms()
	if len(hs) != 2 || hs[0].Name != "alpha" || hs[1].Name != "zeta" {
		t.Fatalf("Histograms = %v, want sorted [alpha zeta]", hs)
	}
	if hs[1].Hist.Count() != 2 {
		t.Fatalf("zeta count = %d, want 2", hs[1].Hist.Count())
	}
	if tr.Histogram("alpha") != hs[0].Hist {
		t.Fatal("Histogram(name) must return the registered histogram")
	}
	if tr.Histogram("missing") != nil {
		t.Fatal("Histogram of an unknown name must be nil")
	}
}

// chromeFile mirrors the JSON document WriteChrome emits.
type chromeFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromePairsAndValidJSON(t *testing.T) {
	tr := New(64)
	tr.Span(1000, 3000, LayerRPC, KindRPC, "client0", "rpc", 7, 0)
	tr.Begin(1200, LayerIbsim, KindWQE, "client0/qp1", "SEND", 1, 64)
	tr.End(2200, LayerIbsim, KindWQE, "client0/qp1", "SEND", 1, 0)
	tr.Instant(1500, LayerRPC, KindTimeout, "client0", "timeout", 7, 0)
	// Unmatched Begin: must be closed at the stream's last timestamp, not
	// dropped or emitted as a dangling "B".
	tr.Begin(2500, LayerIbsim, KindCQE, "server", "RECV", 9, 0)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 {
				t.Fatalf("span %q has negative duration", e.Name)
			}
		case "i":
			instants++
		case "B", "E":
			t.Fatalf("output contains unpaired phase %q", e.Ph)
		}
	}
	if spans != 3 {
		t.Fatalf("got %d complete spans, want 3 (span + B/E pair + closed orphan)", spans)
	}
	if instants != 1 {
		t.Fatalf("got %d instants, want 1", instants)
	}
}

func TestSummaryAggregates(t *testing.T) {
	tr := New(64)
	tr.Span(0, 1000, LayerDES, KindBlocked, "p1", "blocked", 1, 0)
	tr.Span(500, 2500, LayerDES, KindBlocked, "p2", "blocked", 2, 0)
	tr.Instant(700, LayerRPC, KindRetransmit, "client0", "retransmit", 3, 1)
	s := Summary(tr.Events())
	if !strings.Contains(s, "blocked") || !strings.Contains(s, "n=2") {
		t.Fatalf("summary missing aggregated span row:\n%s", s)
	}
	if !strings.Contains(s, "retransmit") {
		t.Fatalf("summary missing instant section:\n%s", s)
	}
}

func TestCheckWQECQE(t *testing.T) {
	tr := New(64)
	tr.Begin(10, LayerIbsim, KindWQE, "c/qp1", "SEND", 1, 0)
	tr.End(20, LayerIbsim, KindWQE, "c/qp1", "SEND", 1, 0)
	tr.Begin(15, LayerIbsim, KindWQE, "c/qp1", "RDMA_READ", 2, 0)
	tr.End(40, LayerIbsim, KindWQE, "c/qp1", "RDMA_READ", 2, 0)
	if err := CheckWQECQE(tr.Events()); err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}

	bad := New(64)
	bad.Begin(10, LayerIbsim, KindWQE, "c/qp1", "SEND", 1, 0) // never completes
	bad.End(20, LayerIbsim, KindWQE, "c/qp1", "SEND", 2, 0)   // completes without post
	err := CheckWQECQE(bad.Events())
	if err == nil {
		t.Fatal("missing completion and orphan completion not detected")
	}
	for _, want := range []string{"never completed", "without a post"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}

	dup := New(64)
	dup.Begin(10, LayerIbsim, KindWQE, "c/qp1", "SEND", 1, 0)
	dup.Begin(11, LayerIbsim, KindWQE, "c/qp1", "SEND", 1, 0)
	if err := CheckWQECQE(dup.Events()); err == nil || !strings.Contains(err.Error(), "posted twice") {
		t.Fatalf("duplicate post not detected: %v", err)
	}
}

func TestCheckExposureBounds(t *testing.T) {
	const remoteRead = uint8(1 << 1)
	good := New(64)
	good.Span(100, 500, LayerRPC, KindRPC, "client0", "rpc", 0x42, 0)
	good.Begin(110, LayerIbsim, KindMR, "client0", "mr", 0x99, MRArg(remoteRead, 4096))
	good.Instant(120, LayerRPC, KindExpose, "client0", "expose", 0x42, 0x99)
	good.End(400, LayerIbsim, KindMR, "client0", "mr", 0x99, 0)
	if err := CheckExposureBounds(good.Events()); err != nil {
		t.Fatalf("bounded exposure rejected: %v", err)
	}

	// The MR is deregistered after the RPC span ends: a lifetime leak.
	leak := New(64)
	leak.Span(100, 500, LayerRPC, KindRPC, "client0", "rpc", 0x42, 0)
	leak.Begin(110, LayerIbsim, KindMR, "client0", "mr", 0x99, MRArg(remoteRead, 4096))
	leak.Instant(120, LayerRPC, KindExpose, "client0", "expose", 0x42, 0x99)
	leak.End(900, LayerIbsim, KindMR, "client0", "mr", 0x99, 0)
	if err := CheckExposureBounds(leak.Events()); err == nil || !strings.Contains(err.Error(), "outlives") {
		t.Fatalf("exposure outliving its RPC not detected: %v", err)
	}

	// Exposure with no live MR at all.
	ghost := New(64)
	ghost.Span(100, 500, LayerRPC, KindRPC, "client0", "rpc", 0x42, 0)
	ghost.Instant(120, LayerRPC, KindExpose, "client0", "expose", 0x42, 0x99)
	if err := CheckExposureBounds(ghost.Events()); err == nil || !strings.Contains(err.Error(), "no live MR") {
		t.Fatalf("exposure without an MR not detected: %v", err)
	}

	// Never deregistered.
	open := New(64)
	open.Span(100, 500, LayerRPC, KindRPC, "client0", "rpc", 0x42, 0)
	open.Begin(110, LayerIbsim, KindMR, "client0", "mr", 0x99, MRArg(remoteRead, 4096))
	open.Instant(120, LayerRPC, KindExpose, "client0", "expose", 0x42, 0x99)
	if err := CheckExposureBounds(open.Events()); err == nil || !strings.Contains(err.Error(), "never deregistered") {
		t.Fatalf("open exposure not detected: %v", err)
	}
}

func TestCheckNoRemoteExposure(t *testing.T) {
	const (
		localWrite  = uint8(1 << 0)
		remoteWrite = uint8(1 << 2)
	)
	tr := New(64)
	tr.Begin(10, LayerIbsim, KindMR, "server", "mr", 1, MRArg(localWrite, 4096))
	tr.Begin(20, LayerIbsim, KindMR, "client0", "mr", 2, MRArg(remoteWrite, 4096))
	if err := CheckNoRemoteExposure(tr.Events(), "server"); err != nil {
		t.Fatalf("local-only server flagged: %v", err)
	}
	if err := CheckNoRemoteExposure(tr.Events(), "client0"); err == nil {
		t.Fatal("remote MR on client0 not flagged")
	}
}

// chromeMetaFile decodes just enough of the export to check row metadata.
type chromeMetaFile struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
		Args struct {
			Name      string `json:"name"`
			SortIndex *int   `json:"sort_index"`
		} `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteChromeRowMetadata pins the viewer-readability contract: every
// track gets a process_name plus a process_sort_index that orders rows by
// sorted track name (keeping a node's shard tracks adjacent), and every
// (track, layer) row seen in the data gets thread_name + thread_sort_index.
func TestWriteChromeRowMetadata(t *testing.T) {
	tr := New(64)
	tr.Span(1000, 2000, LayerRPC, KindServe, "server/shard1", "WRITE", 1, 0)
	tr.Span(1500, 2500, LayerRPC, KindServe, "server/shard0", "READ", 2, 0)
	tr.Span(900, 1100, LayerIbsim, KindDMA, "client0/qp1", "SEND", 3, 64)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeMetaFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	procName := map[int]string{}   // pid -> track name
	procSort := map[int]int{}      // pid -> sort_index
	threadMeta := map[[2]int]int{} // (pid, tid) -> named+sorted count
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "process_name":
			procName[e.PID] = e.Args.Name
		case "process_sort_index":
			if e.Args.SortIndex == nil {
				t.Fatalf("process_sort_index for pid %d has no sort_index", e.PID)
			}
			procSort[e.PID] = *e.Args.SortIndex
		case "thread_name", "thread_sort_index":
			threadMeta[[2]int{e.PID, e.TID}]++
		}
	}
	want := []string{"client0/qp1", "server/shard0", "server/shard1"}
	if len(procName) != len(want) {
		t.Fatalf("got %d process_name events, want %d: %v", len(procName), len(want), procName)
	}
	// sort_index must rank the tracks alphabetically.
	byIndex := make([]string, len(want))
	for pid, name := range procName {
		idx, ok := procSort[pid]
		if !ok {
			t.Fatalf("track %q (pid %d) has no process_sort_index", name, pid)
		}
		if idx < 1 || idx > len(want) {
			t.Fatalf("track %q sort_index %d out of range", name, idx)
		}
		byIndex[idx-1] = name
	}
	for i, name := range byIndex {
		if name != want[i] {
			t.Fatalf("sort order %v, want %v", byIndex, want)
		}
	}
	for k, n := range threadMeta {
		if n != 2 {
			t.Fatalf("row pid=%d tid=%d has %d of thread_name+thread_sort_index, want both", k[0], k[1], n)
		}
	}
	if len(threadMeta) != 3 {
		t.Fatalf("got %d named thread rows, want 3", len(threadMeta))
	}
}
