package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event exporter. The output loads in chrome://tracing and
// Perfetto: one "process" row per Track (node, node/qp, process name), one
// "thread" per layer within it, spans as complete ("X") events and point
// events as instants ("i"). Begin/End pairs are matched by
// (Layer, Kind, Track, ID); a Begin left open at the end of the stream is
// closed at the last timestamp (the simulation stopped with the interval
// still live — an open MR, a parked reply), and an End without a Begin is
// dropped (its opening edge was overwritten by ring wrap-around).

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat,omitempty"`
	Phase string     `json:"ph"`
	TS    float64    `json:"ts"` // microseconds
	Dur   *float64   `json:"dur,omitempty"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Scope string     `json:"s,omitempty"`
	Args  *chromeArg `json:"args,omitempty"`
}

type chromeArg struct {
	Name      string `json:"name,omitempty"`
	ID        uint64 `json:"id,omitempty"`
	Arg       int64  `json:"arg,omitempty"`
	Kind      string `json:"kind,omitempty"`
	SortIndex *int   `json:"sort_index,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

type pairKey struct {
	layer Layer
	kind  Kind
	track string
	id    uint64
}

// WriteChrome renders events as Chrome trace_event JSON.
func WriteChrome(w io.Writer, events []Event) error {
	pids := map[string]int{}
	pidOf := func(track string) int {
		if p, ok := pids[track]; ok {
			return p
		}
		p := len(pids) + 1
		pids[track] = p
		return p
	}

	var out []chromeEvent
	span := func(e *Event, start, end int64) {
		d := float64(end-start) / 1e3
		out = append(out, chromeEvent{
			Name: e.Name, Cat: e.Layer.String(), Phase: "X",
			TS: float64(start) / 1e3, Dur: &d,
			PID: pidOf(e.Track), TID: int(e.Layer),
			Args: &chromeArg{ID: e.ID, Arg: e.Arg, Kind: e.Kind.String()},
		})
	}

	var lastT int64
	for i := range events {
		if t := events[i].End(); t > lastT {
			lastT = t
		}
	}

	open := map[pairKey][]*Event{}
	for i := range events {
		e := &events[i]
		switch e.Phase {
		case PhaseSpan:
			span(e, e.T, e.T+e.Dur)
		case PhaseBegin:
			k := pairKey{e.Layer, e.Kind, e.Track, e.ID}
			open[k] = append(open[k], e)
		case PhaseEnd:
			k := pairKey{e.Layer, e.Kind, e.Track, e.ID}
			if st := open[k]; len(st) > 0 {
				b := st[len(st)-1]
				open[k] = st[:len(st)-1]
				span(b, b.T, e.T)
			}
		case PhaseInstant:
			out = append(out, chromeEvent{
				Name: e.Name, Cat: e.Layer.String(), Phase: "i",
				TS: float64(e.T) / 1e3, Scope: "t",
				PID: pidOf(e.Track), TID: int(e.Layer),
				Args: &chromeArg{ID: e.ID, Arg: e.Arg, Kind: e.Kind.String()},
			})
		}
	}
	// Close intervals still live when the simulation stopped.
	for _, st := range open {
		for _, b := range st {
			span(b, b.T, lastT)
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	// Name the rows: track strings as processes, layers as threads.
	meta := make([]chromeEvent, 0, len(pids)*2)
	tracks := make([]string, 0, len(pids))
	for t := range pids {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	seenTID := map[[2]int]bool{}
	for i := range out {
		seenTID[[2]int{out[i].PID, out[i].TID}] = true
	}
	for ti, t := range tracks {
		// sort_index pins the viewer's row order to the sorted track names
		// (pids are assigned in first-appearance order, which would otherwise
		// scatter a node's shard tracks) and the layers to stack order.
		pidx := ti + 1
		meta = append(meta, chromeEvent{
			Name: "process_name", Phase: "M", PID: pids[t],
			Args: &chromeArg{Name: t},
		})
		meta = append(meta, chromeEvent{
			Name: "process_sort_index", Phase: "M", PID: pids[t],
			Args: &chromeArg{SortIndex: &pidx},
		})
		for l := Layer(0); l < numLayers; l++ {
			if seenTID[[2]int{pids[t], int(l)}] {
				tidx := int(l)
				meta = append(meta, chromeEvent{
					Name: "thread_name", Phase: "M", PID: pids[t], TID: int(l),
					Args: &chromeArg{Name: l.String()},
				})
				meta = append(meta, chromeEvent{
					Name: "thread_sort_index", Phase: "M", PID: pids[t], TID: int(l),
					Args: &chromeArg{SortIndex: &tidx},
				})
			}
		}
	}

	doc := chromeDoc{TraceEvents: append(meta, out...), DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
