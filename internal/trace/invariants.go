package trace

import (
	"fmt"
	"strings"
)

// Trace-driven invariant checks: correctness properties of the stack
// stated as predicates over the event stream and enforced from tests
// (make trace-check). They need a complete stream — callers should reject
// traces with Dropped() > 0 before trusting pairing checks.

// MRArg encodes the payload of a KindMR Begin event: the low 3 bits carry
// the ibsim access flags (LocalWrite, RemoteRead, RemoteWrite in bit
// order), the remaining bits the registered length in bytes.
func MRArg(access uint8, length int) int64 { return int64(access) | int64(length)<<3 }

const (
	mrAccessRemoteRead  = 1 << 1
	mrAccessRemoteWrite = 1 << 2
)

// mrRemote reports whether an MR Arg carries remote read or write access.
func mrRemote(arg int64) bool { return arg&(mrAccessRemoteRead|mrAccessRemoteWrite) != 0 }

// problems accumulates invariant violations, reporting the first few.
type problems struct {
	n    int
	msgs []string
}

func (p *problems) addf(format string, args ...any) {
	p.n++
	if len(p.msgs) < 8 {
		p.msgs = append(p.msgs, fmt.Sprintf(format, args...))
	}
}

func (p *problems) err(what string) error {
	if p.n == 0 {
		return nil
	}
	return fmt.Errorf("trace: %s: %d violation(s):\n  %s", what, p.n, strings.Join(p.msgs, "\n  "))
}

// CheckWQECQE verifies completion discipline: every posted work request
// (KindWQE Begin) is completed exactly once (KindWQE End) at a time no
// earlier than its post, and no completion appears for a request that was
// never posted. This holds even under fault injection — flushed WQEs
// complete with an error, they do not vanish.
func CheckWQECQE(events []Event) error {
	var p problems
	posted := map[uint64]int64{} // WQE seq -> post time, removed at completion
	for i := range events {
		e := &events[i]
		if e.Kind != KindWQE {
			continue
		}
		switch e.Phase {
		case PhaseBegin:
			if _, dup := posted[e.ID]; dup {
				p.addf("WQE %d (%s on %s) posted twice", e.ID, e.Name, e.Track)
				continue
			}
			posted[e.ID] = e.T
		case PhaseEnd:
			t0, ok := posted[e.ID]
			if !ok {
				p.addf("WQE %d (%s on %s) completed at %dns without a post (or completed twice)", e.ID, e.Name, e.Track, e.T)
				continue
			}
			if e.T < t0 {
				p.addf("WQE %d (%s on %s) completed at %dns before its post at %dns", e.ID, e.Name, e.Track, e.T, t0)
			}
			delete(posted, e.ID)
		}
	}
	for id, t0 := range posted {
		p.addf("WQE %d posted at %dns but never completed", id, t0)
	}
	return p.err("WQE/CQE pairing")
}

// mrInterval is one TPT-entry lifetime on a track.
type mrInterval struct {
	start, end int64
	open       bool
	arg        int64
}

type trackKey struct {
	track string
	id    uint64
}

// mrIntervals reconstructs MR lifetimes per (track, rkey) from KindMR
// Begin/End pairs, in stream order.
func mrIntervals(events []Event) map[trackKey][]mrInterval {
	out := map[trackKey][]mrInterval{}
	for i := range events {
		e := &events[i]
		if e.Kind != KindMR {
			continue
		}
		k := trackKey{e.Track, e.ID}
		switch e.Phase {
		case PhaseBegin:
			out[k] = append(out[k], mrInterval{start: e.T, end: 0, open: true, arg: e.Arg})
		case PhaseEnd:
			ivs := out[k]
			for j := len(ivs) - 1; j >= 0; j-- {
				if ivs[j].open {
					ivs[j].open = false
					ivs[j].end = e.T
					break
				}
			}
		}
	}
	return out
}

// CheckExposureBounds verifies the paper's client-side safety property:
// every remotely accessible rkey a client binds to an RPC (KindExpose,
// ID = XID, Arg = rkey) is deregistered no later than the RPC completes
// (its KindRPC span ends). An exposure that outlives its RPC is a window
// in which a remote peer can read or corrupt memory the RPC no longer
// owns — exactly what the Read-Write design closes on the server side and
// what this check pins down on the client side.
func CheckExposureBounds(events []Event) error {
	var p problems
	mrs := mrIntervals(events)

	// RPC spans per (track, xid); several can exist over a long run, so an
	// exposure matches the span containing its instant.
	rpcs := map[trackKey][]mrInterval{}
	for i := range events {
		e := &events[i]
		if e.Kind == KindRPC && e.Phase == PhaseSpan {
			k := trackKey{e.Track, e.ID}
			rpcs[k] = append(rpcs[k], mrInterval{start: e.T, end: e.T + e.Dur})
		}
	}

	for i := range events {
		e := &events[i]
		if e.Kind != KindExpose || e.Phase != PhaseInstant {
			continue
		}
		rkey := uint64(e.Arg)
		var mr *mrInterval
		for j, iv := range mrs[trackKey{e.Track, rkey}] {
			if iv.start <= e.T && (iv.open || e.T <= iv.end) {
				mr = &mrs[trackKey{e.Track, rkey}][j]
				break
			}
		}
		if mr == nil {
			p.addf("exposure of rkey %#x on %s at %dns has no live MR", rkey, e.Track, e.T)
			continue
		}
		var rpcEnd int64 = -1
		for _, iv := range rpcs[trackKey{e.Track, e.ID}] {
			if iv.start <= e.T && e.T <= iv.end {
				rpcEnd = iv.end
				break
			}
		}
		if rpcEnd < 0 {
			p.addf("exposure of rkey %#x on %s at %dns is not inside RPC xid=%#x", rkey, e.Track, e.T, e.ID)
			continue
		}
		if mr.open {
			p.addf("rkey %#x on %s (xid=%#x) never deregistered; RPC ended at %dns", rkey, e.Track, e.ID, rpcEnd)
			continue
		}
		if mr.end > rpcEnd {
			p.addf("rkey %#x on %s outlives its RPC xid=%#x: deregistered at %dns, RPC ended at %dns",
				rkey, e.Track, e.ID, mr.end, rpcEnd)
		}
	}
	return p.err("MR exposure bounds")
}

// CheckNoRemoteExposure verifies the Read-Write design's server-side
// security property (§4.2): the named track (the server node) never
// installs a remotely accessible memory region. On a Read-Read server
// this check fails by design — its reply buffers are remotely readable —
// which is how a test demonstrates the §4.1 exposure is visible in the
// trace.
func CheckNoRemoteExposure(events []Event, track string) error {
	var p problems
	for i := range events {
		e := &events[i]
		if e.Kind == KindMR && e.Phase == PhaseBegin && e.Track == track && mrRemote(e.Arg) {
			p.addf("remotely accessible MR rkey=%#x (len %d) installed on %s at %dns",
				e.ID, e.Arg>>3, e.Track, e.T)
		}
	}
	return p.err("remote exposure on " + track)
}
