// Package trace is the simulator's structured observability layer: a
// virtual-time event stream threaded through every layer of the stack —
// the DES kernel (process blocked spans), ibsim (WQE post → doorbell →
// DMA → CQE, IRD/ORD waits, MR lifetimes), rpcrdma (per-XID RPC lifecycle,
// credit waits, bulk segments, retransmissions), oncrpc/nfs3 (dispatch,
// DRC outcomes, per-procedure latency) and core (caches, recovery).
//
// Design constraints, in order:
//
//  1. Disabled tracing must cost a nil-check. The kernel's schedule/resume
//     path is allocation-free (see internal/des/bench_test.go) and stays
//     that way: every instrumentation site guards on a nil *Tracer.
//  2. Enabled tracing must not allocate on the hot path. Events are plain
//     value records written into a preallocated ring buffer; names and
//     tracks are static strings assigned, never built, at emission time.
//  3. Events must be useful both to humans (Chrome trace viewer, text
//     summary — see chrome.go and summary.go) and to machines (invariant
//     checkers over the stream — see invariants.go).
//
// The package deliberately does not import internal/des: it keeps time as
// a bare int64 of virtual nanoseconds so the kernel itself can depend on
// it without a cycle.
package trace

import (
	"sort"

	"repro/internal/stats"
)

// Layer identifies the stack layer an event originates from.
type Layer uint8

// Layers, bottom up.
const (
	LayerDES Layer = iota
	LayerIbsim
	LayerRPC
	LayerONCRPC
	LayerNFS
	LayerCore
	numLayers
)

var layerNames = [numLayers]string{"des", "ibsim", "rpcrdma", "oncrpc", "nfs3", "core"}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "layer?"
}

// Phase distinguishes complete spans, asynchronous begin/end pairs, and
// point events.
type Phase uint8

// Phases. PhaseSpan events carry their full duration in Dur (the emitter
// knew both endpoints); PhaseBegin/PhaseEnd pairs are matched by
// (Layer, Kind, Track, ID) when the two ends live in different processes
// (a WQE posted by an RPC thread and completed by the QP engine).
const (
	PhaseInstant Phase = iota
	PhaseSpan
	PhaseBegin
	PhaseEnd
)

// Kind is the event taxonomy. Kinds are layer-scoped but share one number
// space so an Event stays a flat record.
type Kind uint8

// Event kinds, grouped by the layer that emits them.
const (
	// DES kernel.
	KindBlocked Kind = iota // span: process parked → resumed
	KindSpawn               // instant: process created

	// ibsim fabric.
	KindWQE      // begin/end: work request posted → completion generated
	KindDoorbell // instant: send engine dequeues the WQE (Arg: SQ depth behind it)
	KindDMA      // span: wire occupancy of the request's data/request packet
	KindORDWait  // span: RDMA Read stalled waiting for an ORD slot
	KindCQE      // begin/end: completion posted to CQ → consumed by software
	KindMR       // begin/end: TPT entry installed → removed (Arg: access|len<<3)
	KindRegCall  // span: one registration/map call on the host
	KindRNR      // instant: receiver-not-ready redelivery
	KindQPError  // instant: queue pair entered the error state

	// rpcrdma.
	KindRPC        // span: client Roundtrip, one per XID attempt set
	KindCreditWait // span: client blocked on flow-control credits
	KindBulkRead   // span: RDMA Read segment pull (client chunks, server write data)
	KindBulkWrite  // instant: RDMA Write segment posted (server push)
	KindRetransmit // instant: XID-stable retransmission sent
	KindTimeout    // instant: per-call timer expired
	KindServe      // span: server-side handling of one received message
	KindParked     // begin/end: reply buffers parked awaiting RDMA_DONE (Read-Read)
	KindDone       // instant: RDMA_DONE sent (client) or received (server)
	KindExpose     // instant: client binds a remotely accessible rkey (Arg) to an RPC (ID=XID)
	KindShortWrite // instant: reply payload truncated by the client's chunk capacity

	// oncrpc.
	KindDispatch    // span: service handler execution for one call
	KindDRCHit      // instant: duplicate request answered from the cache
	KindDRCSuppress // instant: duplicate of a still-executing request dropped

	// nfs3.
	KindNFSProc // span: one NFS procedure as seen by the client

	// core.
	KindCacheHit  // instant: client cache hit (attr/lookup/data — see Name)
	KindCacheMiss // instant: client cache miss
	KindReconnect // span: recovery layer replacing a broken connection
	KindReplay    // instant: call replayed onto a fresh connection
	numKinds
)

var kindNames = [numKinds]string{
	"blocked", "spawn",
	"wqe", "doorbell", "dma", "ord-wait", "cqe", "mr", "reg-call", "rnr", "qp-error",
	"rpc", "credit-wait", "bulk-read", "bulk-write", "retransmit", "timeout",
	"serve", "parked", "done", "expose", "short-write",
	"dispatch", "drc-hit", "drc-suppress",
	"nfs-proc",
	"cache-hit", "cache-miss", "reconnect", "replay",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Event is one structured trace record. T is virtual nanoseconds; Dur is
// only meaningful for PhaseSpan. Track is the hardware/software context
// the event belongs to (node, node/qp, process name) and becomes a Chrome
// trace process row. ID pairs Begin/End events and links related events
// (WQE sequence numbers, XIDs, rkeys); Arg is kind-specific payload.
type Event struct {
	T     int64
	Dur   int64
	ID    uint64
	Arg   int64
	Track string
	Name  string
	Layer Layer
	Kind  Kind
	Phase Phase
}

// End returns the event's end time: T+Dur for spans, T otherwise.
func (e *Event) End() int64 {
	if e.Phase == PhaseSpan {
		return e.T + e.Dur
	}
	return e.T
}

// Tracer is a ring-buffer event sink plus a registry of named latency
// histograms. A Tracer belongs to one simulation and inherits its
// single-threaded discipline: Emit and Observe are only called from
// simulation processes (one at a time), and readers (Events, Histograms)
// run after the simulation completes. All methods are safe on a nil
// receiver — a nil *Tracer IS the disabled state.
type Tracer struct {
	buf []Event
	n   uint64 // total events emitted (may exceed len(buf))

	hists     map[string]*stats.Histogram
	histOrder []string
}

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: large enough for a small experiment, ~5 MB of memory.
const DefaultCapacity = 1 << 16

// New creates a tracer whose ring holds capacity events; older events are
// overwritten once the ring wraps (Dropped reports how many).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, capacity), hists: make(map[string]*stats.Histogram)}
}

// Emit appends one event to the ring. It is allocation-free and safe on a
// nil receiver.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
}

// Span records a completed [start, end] interval in one event.
func (t *Tracer) Span(start, end int64, layer Layer, kind Kind, track, name string, id uint64, arg int64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: start, Dur: end - start, ID: id, Arg: arg, Track: track, Name: name, Layer: layer, Kind: kind, Phase: PhaseSpan})
}

// Begin records the opening edge of an asynchronous pair.
func (t *Tracer) Begin(at int64, layer Layer, kind Kind, track, name string, id uint64, arg int64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: at, ID: id, Arg: arg, Track: track, Name: name, Layer: layer, Kind: kind, Phase: PhaseBegin})
}

// End records the closing edge of an asynchronous pair.
func (t *Tracer) End(at int64, layer Layer, kind Kind, track, name string, id uint64, arg int64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: at, ID: id, Arg: arg, Track: track, Name: name, Layer: layer, Kind: kind, Phase: PhaseEnd})
}

// Instant records a point event.
func (t *Tracer) Instant(at int64, layer Layer, kind Kind, track, name string, id uint64, arg int64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: at, ID: id, Arg: arg, Track: track, Name: name, Layer: layer, Kind: kind, Phase: PhaseInstant})
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
// Invariant checks require a complete stream; callers should verify this
// is zero (and size the ring up) before trusting pairing checks.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	cap64 := uint64(len(t.buf))
	if t.n <= cap64 {
		out := make([]Event, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]Event, cap64)
	head := t.n % cap64 // oldest retained event
	copy(out, t.buf[head:])
	copy(out[cap64-head:], t.buf[:head])
	return out
}

// Observe records one latency sample (microseconds) in the named
// histogram, creating it on first use. Safe on a nil receiver.
func (t *Tracer) Observe(name string, us float64) {
	if t == nil {
		return
	}
	h := t.hists[name]
	if h == nil {
		h = &stats.Histogram{}
		t.hists[name] = h
		t.histOrder = append(t.histOrder, name)
	}
	h.Observe(us)
}

// Histogram returns the named histogram, or nil if nothing was observed
// under that name (or the tracer is nil).
func (t *Tracer) Histogram(name string) *stats.Histogram {
	if t == nil {
		return nil
	}
	return t.hists[name]
}

// NamedHistogram pairs a histogram with its registry name.
type NamedHistogram struct {
	Name string
	Hist *stats.Histogram
}

// Histograms returns every named histogram sorted by name, so reports are
// byte-stable across runs.
func (t *Tracer) Histograms() []NamedHistogram {
	if t == nil {
		return nil
	}
	names := append([]string(nil), t.histOrder...)
	sort.Strings(names)
	out := make([]NamedHistogram, 0, len(names))
	for _, n := range names {
		out = append(out, NamedHistogram{Name: n, Hist: t.hists[n]})
	}
	return out
}
