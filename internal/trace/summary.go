package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Summary renders a compact flamegraph-style text digest of an event
// stream: spans aggregated by (layer, name) with count, total and mean
// virtual time plus a bar scaled to the busiest row, then instant counts.
// It is the quick look you take before opening the Chrome trace.
func Summary(events []Event) string {
	type aggKey struct {
		layer Layer
		kind  Kind
		name  string
	}
	type agg struct {
		count int64
		total int64 // ns
		max   int64
	}
	spans := map[aggKey]*agg{}
	instants := map[aggKey]int64{}
	var lastT int64
	for i := range events {
		if t := events[i].End(); t > lastT {
			lastT = t
		}
	}

	open := map[pairKey][]*Event{}
	record := func(k aggKey, dur int64) {
		a := spans[k]
		if a == nil {
			a = &agg{}
			spans[k] = a
		}
		a.count++
		a.total += dur
		if dur > a.max {
			a.max = dur
		}
	}
	for i := range events {
		e := &events[i]
		k := aggKey{e.Layer, e.Kind, e.Name}
		switch e.Phase {
		case PhaseSpan:
			record(k, e.Dur)
		case PhaseBegin:
			pk := pairKey{e.Layer, e.Kind, e.Track, e.ID}
			open[pk] = append(open[pk], e)
		case PhaseEnd:
			pk := pairKey{e.Layer, e.Kind, e.Track, e.ID}
			if st := open[pk]; len(st) > 0 {
				b := st[len(st)-1]
				open[pk] = st[:len(st)-1]
				record(aggKey{b.Layer, b.Kind, b.Name}, e.T-b.T)
			}
		case PhaseInstant:
			instants[k]++
		}
	}
	for _, st := range open {
		for _, b := range st {
			record(aggKey{b.Layer, b.Kind, b.Name}, lastT-b.T)
		}
	}

	keys := make([]aggKey, 0, len(spans))
	var peak int64
	for k, a := range spans {
		keys = append(keys, k)
		if a.total > peak {
			peak = a.total
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		ti, tj := spans[keys[i]].total, spans[keys[j]].total
		if ti != tj {
			return ti > tj
		}
		return keys[i].name < keys[j].name
	})

	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d events, %.3f ms of virtual time\n", len(events), float64(lastT)/1e6)
	const barWidth = 30
	for _, k := range keys {
		a := spans[k]
		bar := 0
		if peak > 0 {
			bar = int(int64(barWidth) * a.total / peak)
		}
		fmt.Fprintf(&b, "  %-8s %-18s n=%-7d total=%9.3fms mean=%8.1fµs max=%8.1fµs |%-*s|\n",
			k.layer, k.name, a.count,
			float64(a.total)/1e6, float64(a.total)/float64(a.count)/1e3, float64(a.max)/1e3,
			barWidth, strings.Repeat("#", bar))
	}
	if len(instants) > 0 {
		ikeys := make([]aggKey, 0, len(instants))
		for k := range instants {
			ikeys = append(ikeys, k)
		}
		sort.Slice(ikeys, func(i, j int) bool {
			if ikeys[i].layer != ikeys[j].layer {
				return ikeys[i].layer < ikeys[j].layer
			}
			if instants[ikeys[i]] != instants[ikeys[j]] {
				return instants[ikeys[i]] > instants[ikeys[j]]
			}
			return ikeys[i].name < ikeys[j].name
		})
		b.WriteString("  instants:\n")
		for _, k := range ikeys {
			fmt.Fprintf(&b, "    %-8s %-18s n=%d\n", k.layer, k.name, instants[k])
		}
	}
	return b.String()
}
