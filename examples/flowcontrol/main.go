// Flowcontrol: the paper's future-work proposal, implemented — dynamic
// credit-based flow control on the RPC/RDMA transport. The server
// advertises its live capacity in every reply's credit field (Figure 2's
// flow-control field); clients throttle new calls to the latest grant.
//
// This example replays the §4.1 buffer-pinning attack from
// examples/security with dynamic credits enabled on the Read-Read design:
// the attacker still pins what it touches, but the shrinking grant caps its
// rate, and the damage stabilizes instead of wedging the server.
package main

import (
	"fmt"
	"time"

	nfsrdma "repro"
)

func run(dynamic bool) {
	profile := nfsrdma.SolarisSDR()
	profile.RDMAClient.DynamicCredits = dynamic
	profile.RDMAServer.DynamicCredits = dynamic
	profile.RDMAClient.Credits = 16
	profile.RDMAServer.Credits = 16
	profile.RDMAServer.ReplyBufPool = 16

	cluster := nfsrdma.NewCluster(nfsrdma.Config{
		Profile:   profile,
		Transport: nfsrdma.TransportRDMA,
		Design:    nfsrdma.DesignReadRead, // the vulnerable design
		RegMode:   nfsrdma.RegDynamic,
		Clients:   2,
	})
	evil, good := cluster.Clients[0], cluster.Clients[1]

	attackerReads := 0
	cluster.Start("attacker", func(p *nfsrdma.Proc) {
		evil.RDMA.DropDone = true
		f, _ := evil.Create(p, "bait")
		buf := evil.NewBuffer(64 << 10)
		f.WriteAt(p, buf, 0, 0, 64<<10, false)
		// Try to pin well past the pool size: under the shared static pool
		// this wedges the whole server; under per-connection dynamic pools
		// it wedges only this connection.
		for i := 0; i < 40; i++ {
			if _, _, err := f.ReadAt(p, buf, 0, 0, 64<<10, false); err != nil {
				break
			}
			attackerReads++
		}
	})

	victimOps := 0
	cluster.Start("victim", func(p *nfsrdma.Proc) {
		p.Sleep(20 * time.Millisecond)
		f, err := good.Create(p, "work")
		if err != nil {
			return
		}
		buf := good.NewBuffer(64 << 10)
		f.WriteAt(p, buf, 0, 0, 64<<10, false)
		deadline := p.Now() + nfsrdma.Time(500*time.Millisecond)
		for p.Now() < deadline {
			if _, _, err := f.ReadAt(p, buf, 0, 0, 64<<10, false); err != nil {
				return
			}
			victimOps++
		}
	})

	cluster.RunUntil(nfsrdma.Time(2 * time.Second))
	mode := "static credits "
	if dynamic {
		mode = "dynamic credits"
	}
	fmt.Printf("%s: attacker pinned %2d replies (grant fell to %2d); victim completed %4d ops (grant %2d)\n",
		mode,
		cluster.Server.RDMA.ParkedReplies(),
		evil.RDMA.GrantedCredits(),
		victimOps,
		good.RDMA.GrantedCredits())
}

func main() {
	fmt.Println("Read-Read design under a DONE-withholding client, 16-credit connection:")
	run(false)
	run(true)
	fmt.Println("\nStatic credits share one reply pool: the attacker exhausts it and the victim")
	fmt.Println("starves. Dynamic credits make the pool and the grant per connection: the")
	fmt.Println("attacker's grant collapses and only the attacker wedges.")
}
