// Quickstart: bring up a one-client NFS/RDMA deployment (the paper's
// proposed Read-Write design with the buffer registration cache), write a
// file over the simulated InfiniBand fabric, and read it back — once
// through the buffered path and once through the zero-copy direct-I/O path.
package main

import (
	"fmt"
	"log"

	nfsrdma "repro"
)

func main() {
	cluster := nfsrdma.NewCluster(nfsrdma.Config{
		Profile:   nfsrdma.SolarisSDR(),
		Transport: nfsrdma.TransportRDMA,
		Design:    nfsrdma.DesignReadWrite,
		RegMode:   nfsrdma.RegCache,
		CopyData:  true, // move real bytes so we can verify them
	})
	client := cluster.Clients[0]

	cluster.Start("quickstart", func(p *nfsrdma.Proc) {
		if err := client.Mkdir(p, "home"); err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		f, err := client.Create(p, "home/hello.txt")
		if err != nil {
			log.Fatalf("create: %v", err)
		}

		msg := "hello from NFS over (simulated) RDMA\n"
		wbuf := client.NewMaterializedBuffer(len(msg))
		copy(wbuf.Bytes(), msg)
		if _, err := f.WriteAt(p, wbuf, 0, 0, len(msg), true); err != nil {
			log.Fatalf("write: %v", err)
		}

		for _, direct := range []bool{false, true} {
			rbuf := client.NewMaterializedBuffer(len(msg))
			n, eof, err := f.ReadAt(p, rbuf, 0, 0, len(msg), direct)
			if err != nil {
				log.Fatalf("read (direct=%v): %v", direct, err)
			}
			fmt.Printf("read %d bytes (direct=%v, eof=%v) at t=%v: %q\n",
				n, direct, eof, p.Now(), string(rbuf.Bytes()[:n]))
		}

		size, _ := f.Size(p)
		fmt.Printf("file size per GETATTR: %d bytes\n", size)
		fmt.Printf("server memory regions ever exposed to clients: %d (Read-Write design)\n",
			cluster.Server.Node.HCA.RemoteExposedEver())
	})
	end := cluster.Run()
	fmt.Printf("simulation finished at %v\n", end)
}
