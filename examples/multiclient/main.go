// Multiclient: the §5.3 scale-out experiment — up to seven clients
// stream-reading 256 MiB files from a server whose data lives on a RAID-0
// array behind a page cache, comparing NFS/RDMA against NFS/TCP over IPoIB
// and Gigabit Ethernet. Watch the RDMA curve collapse the moment the
// clients' combined working set overflows the server cache.
package main

import (
	"fmt"
	"log"

	nfsrdma "repro"
)

func main() {
	const (
		fileSize  = 256 << 20 // per client (a quarter of the paper's 1 GB: same shape, faster run)
		cacheSize = 768 << 20 // a quarter of the paper's ~3 GB usable on the 4 GB server
	)
	fmt.Println("multi-client streaming read, RAID-0 back end, server cache", cacheSize>>20, "MiB,",
		fileSize>>20, "MiB per client")
	fmt.Printf("%-8s %12s %12s %12s %10s %8s\n", "clients", "RDMA MB/s", "IPoIB MB/s", "GigE MB/s", "cache-hit", "disk%")

	for clients := 1; clients <= 7; clients++ {
		row := map[nfsrdma.Transport]nfsrdma.MultiClientResult{}
		for _, tr := range []nfsrdma.Transport{nfsrdma.TransportRDMA, nfsrdma.TransportIPoIB, nfsrdma.TransportGigE} {
			cluster := nfsrdma.NewCluster(nfsrdma.Config{
				Profile:        nfsrdma.LinuxDDR(),
				Transport:      tr,
				Design:         nfsrdma.DesignReadWrite,
				RegMode:        nfsrdma.RegAllPhysical,
				Clients:        clients,
				Backend:        nfsrdma.BackendDisk,
				PageCacheBytes: cacheSize,
			})
			var res nfsrdma.MultiClientResult
			cluster.Start("stream", func(p *nfsrdma.Proc) {
				var err error
				res, err = nfsrdma.RunMultiClient(p, cluster, nfsrdma.MultiClientConfig{
					FileSize: fileSize, RecordSize: 1 << 20,
				})
				if err != nil {
					log.Fatalf("multiclient (%v, %d clients): %v", tr, clients, err)
				}
			})
			cluster.Run()
			row[tr] = res
		}
		rdma := row[nfsrdma.TransportRDMA]
		fmt.Printf("%-8d %12.1f %12.1f %12.1f %9.0f%% %7.0f%%\n",
			clients,
			rdma.AggregateReadMBps,
			row[nfsrdma.TransportIPoIB].AggregateReadMBps,
			row[nfsrdma.TransportGigE].AggregateReadMBps,
			rdma.CacheHitRatio*100,
			rdma.DiskUtilization*100)
	}
	fmt.Println("\nThe paper's Fig. 10: RDMA rides the wire while the working set fits the cache,")
	fmt.Println("then every transport converges on the disk array; TCP never gets near the wire.")
}
