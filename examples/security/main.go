// Security: demonstrate the §4.1 vulnerabilities of the original Read-Read
// RPC/RDMA design and how the paper's Read-Write design closes them.
//
// Part 1 measures the server's exposure: how many memory regions each
// design makes remotely accessible while serving the same reads.
//
// Part 2 plays the malicious client: under Read-Read, a client that
// withholds RDMA_DONE pins the server's reply buffers — and once the reply
// pool is exhausted, a well-behaved client on the same server starves.
// Under Read-Write there is nothing to withhold.
package main

import (
	"fmt"
	"time"

	nfsrdma "repro"
)

func main() {
	exposure()
	maliciousClient()
}

func exposure() {
	fmt.Println("── server memory exposure while serving 50 READs ──")
	for _, design := range []nfsrdma.Design{nfsrdma.DesignReadRead, nfsrdma.DesignReadWrite} {
		cluster := nfsrdma.NewCluster(nfsrdma.Config{
			Profile:   nfsrdma.SolarisSDR(),
			Transport: nfsrdma.TransportRDMA,
			Design:    design,
			RegMode:   nfsrdma.RegDynamic,
		})
		cl := cluster.Clients[0]
		cluster.Start("reads", func(p *nfsrdma.Proc) {
			f, _ := cl.Create(p, "data")
			buf := cl.NewBuffer(128 << 10)
			f.WriteAt(p, buf, 0, 0, 128<<10, false)
			for i := 0; i < 50; i++ {
				f.ReadAt(p, buf, 0, 0, 128<<10, false)
			}
		})
		cluster.Run()
		fmt.Printf("%-12v server MRs ever remotely readable: %3d   (32-bit steering tags a client could replay or scan)\n",
			design, cluster.Server.Node.HCA.RemoteExposedEver())
	}
	fmt.Println()
}

func maliciousClient() {
	fmt.Println("── malicious client withholding RDMA_DONE (Read-Read design) ──")
	cluster := nfsrdma.NewCluster(nfsrdma.Config{
		Profile:   nfsrdma.SolarisSDR(),
		Transport: nfsrdma.TransportRDMA,
		Design:    nfsrdma.DesignReadRead,
		RegMode:   nfsrdma.RegDynamic,
		Clients:   2,
	})
	evil, good := cluster.Clients[0], cluster.Clients[1]

	cluster.Start("attack", func(p *nfsrdma.Proc) {
		evil.RDMA.DropDone = true // never acknowledge server chunks
		f, _ := evil.Create(p, "bait")
		buf := evil.NewBuffer(128 << 10)
		f.WriteAt(p, buf, 0, 0, 128<<10, false)
		// Each read parks one server reply buffer forever; the pool is
		// bounded, so this loop wedges the server.
		for i := 0; i < 64; i++ {
			if _, _, err := f.ReadAt(p, buf, 0, 0, 128<<10, false); err != nil {
				break
			}
			if i == 30 {
				fmt.Printf("after %2d withheld DONEs: server has %d reply buffers pinned, %d bytes still exposed\n",
					i+1, cluster.Server.RDMA.ParkedReplies(), cluster.Server.Node.HCA.RemoteExposedBytes())
			}
		}
	})

	victimDone := false
	cluster.Start("victim", func(p *nfsrdma.Proc) {
		p.Sleep(50 * time.Millisecond) // let the attack build up
		f, err := good.Create(p, "honest-work")
		if err != nil {
			return
		}
		buf := good.NewBuffer(64 << 10)
		start := p.Now()
		f.WriteAt(p, buf, 0, 0, 64<<10, false)
		if _, _, err := f.ReadAt(p, buf, 0, 0, 64<<10, false); err == nil {
			fmt.Printf("victim client read completed after %v\n", p.Now()-start)
			victimDone = true
		}
	})

	cluster.RunUntil(nfsrdma.Time(2 * time.Second))
	fmt.Printf("server reply buffers still pinned at shutdown: %d\n", cluster.Server.RDMA.ParkedReplies())
	if !victimDone {
		fmt.Println("victim client NEVER completed: the reply-buffer pool was exhausted by the attacker")
	}
	fmt.Println("\nIn the Read-Write design the server pushes data with RDMA Write and frees its")
	fmt.Println("buffers on its own send completion — there is no DONE for a client to withhold,")
	fmt.Println("and no server buffer is ever remotely accessible.")
}
