// Registration: compare the four §4.3 memory-registration strategies on
// one IOzone-style configuration and show why the critical-path TPT work is
// the dominant cost of an RPC/RDMA transport — the observation that
// motivates the paper's buffer registration cache.
package main

import (
	"fmt"
	"log"

	nfsrdma "repro"
)

func main() {
	fmt.Println("IOzone read/write, 8 threads, 128 KiB records, Linux SDR testbed, Read-Write design")
	fmt.Printf("%-14s %11s %11s %14s %12s %12s\n",
		"registration", "read MB/s", "write MB/s", "dyn registers", "FMR maps", "cache hits")

	for _, mode := range []nfsrdma.RegMode{
		nfsrdma.RegDynamic, nfsrdma.RegFMR, nfsrdma.RegAllPhysical, nfsrdma.RegCache,
	} {
		cluster := nfsrdma.NewCluster(nfsrdma.Config{
			Profile:   nfsrdma.LinuxSDR(),
			Transport: nfsrdma.TransportRDMA,
			Design:    nfsrdma.DesignReadWrite,
			RegMode:   mode,
		})
		var res nfsrdma.IOzoneResult
		cluster.Start("iozone", func(p *nfsrdma.Proc) {
			var err error
			res, err = nfsrdma.RunIOzone(p, cluster, nfsrdma.IOzoneConfig{
				Threads: 8, FileSize: 32 << 20, RecordSize: 128 << 10,
			})
			if err != nil {
				log.Fatalf("iozone (%v): %v", mode, err)
			}
		})
		cluster.Run()
		st := cluster.Server.Mgr.Stats()
		fmt.Printf("%-14v %11.1f %11.1f %14d %12d %12d\n",
			mode, res.Read.MBps, res.Write.MBps, st.Registers, st.FMRMaps, st.CacheHits)
	}

	fmt.Println(`
Reading the table:
  - dynamic registration pays per-page TPT transactions on every RPC;
  - FMR pre-allocates tags so mapping is cheaper, but entries still cross
    the I/O bus;
  - all-physical skips registration entirely (best read throughput) but
    fragments buffers into physical runs — writes issue several RDMA Reads
    per record and press the IRD/ORD=8 limit;
  - the registration cache keeps slab buffers registered across requests:
    a hit costs nothing, and the buffers are never exposed to clients.`)
}
