// OLTP: run the FileBench-style online-transaction-processing mix the
// paper uses in §5.2 (Fig. 8) against each memory-registration strategy and
// print the throughput and per-operation CPU comparison — the experiment
// behind the paper's "up to 50% application-level improvement" claim for
// the buffer registration cache.
package main

import (
	"fmt"
	"log"
	"time"

	nfsrdma "repro"
)

func main() {
	fmt.Println("FileBench-style OLTP, 128 KiB mean I/O, Solaris testbed, Read-Write design")
	fmt.Printf("%-14s %12s %14s %14s\n", "registration", "ops/s", "client µs/op", "server µs/op")

	var baseline float64
	for _, mode := range []nfsrdma.RegMode{nfsrdma.RegDynamic, nfsrdma.RegFMR, nfsrdma.RegCache} {
		cluster := nfsrdma.NewCluster(nfsrdma.Config{
			Profile:   nfsrdma.SolarisSDR(),
			Transport: nfsrdma.TransportRDMA,
			Design:    nfsrdma.DesignReadWrite,
			RegMode:   mode,
		})
		var res nfsrdma.OLTPResult
		cluster.Start("oltp", func(p *nfsrdma.Proc) {
			var err error
			res, err = nfsrdma.RunOLTP(p, cluster, nfsrdma.OLTPConfig{
				Readers:  100,
				Writers:  10,
				MeanIO:   128 << 10,
				FileSize: 256 << 20,
				Duration: 500 * time.Millisecond,
				Seed:     42,
			})
			if err != nil {
				log.Fatalf("oltp (%v): %v", mode, err)
			}
		})
		cluster.Run()
		fmt.Printf("%-14v %12.0f %14.1f %14.1f\n", mode, res.OpsPerSec, res.ClientUSPerOp, res.ServerUSPerOp)
		if mode == nfsrdma.RegDynamic {
			baseline = res.OpsPerSec
		} else if mode == nfsrdma.RegCache && baseline > 0 {
			fmt.Printf("\nregistration cache vs dynamic registration: %+.0f%% ops/s (paper: up to +50%%)\n",
				res.OpsPerSec/baseline*100-100)
		}
	}
}
