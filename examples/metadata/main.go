// Metadata: a small-op, metadata-heavy mix (stat / open+read / overwrite /
// create+remove / readdir) where bulk transfer is irrelevant and per-RPC
// latency rules. Two things matter here: the inline RPC path of the
// transport, and the client's attribute/lookup cache — the standard NFS
// client machinery this library implements alongside the paper's transport.
package main

import (
	"fmt"
	"log"

	nfsrdma "repro"
)

func main() {
	fmt.Println("metadata-heavy mix, 8 threads, Linux SDR testbed, Read-Write design + registration cache")
	fmt.Printf("%-22s %12s %16s %12s %12s\n", "configuration", "ops/s", "avg latency µs", "client cpu", "server cpu")

	for _, useCache := range []bool{false, true} {
		cluster := nfsrdma.NewCluster(nfsrdma.Config{
			Profile:   nfsrdma.LinuxSDR(),
			Transport: nfsrdma.TransportRDMA,
			Design:    nfsrdma.DesignReadWrite,
			RegMode:   nfsrdma.RegCache,
		})
		var res nfsrdma.MetadataResult
		cluster.Start("meta", func(p *nfsrdma.Proc) {
			var err error
			res, err = nfsrdma.RunMetadata(p, cluster, nfsrdma.MetadataConfig{
				Threads: 8, Dirs: 16, Files: 64, Ops: 400, Seed: 11,
				UseCache: useCache,
			})
			if err != nil {
				log.Fatalf("metadata (cache=%v): %v", useCache, err)
			}
		})
		cluster.Run()
		name := "no client cache"
		if useCache {
			name = "attr+lookup cache"
		}
		fmt.Printf("%-22s %12.0f %16.1f %11.1f%% %11.1f%%\n",
			name, res.OpsPerSec, res.AvgLatencyUS, res.ClientCPUPct, res.ServerCPUPct)
	}
	fmt.Println("\nThe cache absorbs the LOOKUP/GETATTR chatter that dominates path-heavy")
	fmt.Println("workloads; the data operations still ride the RPC/RDMA transport.")
}
