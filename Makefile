GO ?= go

.PHONY: build test check vet faults trace-check scale-check chaos-check mux-check telemetry-check rfp-check adversary-check race-runner bench bench-record bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector. The parallel sweep runner makes simulations genuinely
# concurrent, so -race here guards the "no shared mutable state between
# sims" invariant, not just test hygiene.
check: vet faults trace-check scale-check chaos-check mux-check telemetry-check rfp-check adversary-check
	$(GO) test -race ./...

# adversary-check runs the attack suite under the race detector: the ibsim
# access-flag/bounds enforcement matrix and FMR remap-window tests, the
# forged-DONE regression tests (dedicated, sharded, and shared-QP paths),
# the fixed-seed adversary experiments (rkey scan TTC ranking, spoof
# quarantine scoping, DRC forgery isolation, attack-under-chaos, same-seed
# byte-identity), and the experiment-level sweep including its
# sequential-vs-parallel determinism check.
adversary-check:
	$(GO) test -race ./internal/adversary/
	$(GO) test -race -run 'Adversary|Forged|Spoof|Quarantine|AccessEnforcement|RemapWindow|Hoard|Malicious' \
		./internal/ibsim/ ./internal/rpcrdma/ ./internal/experiments/

# chaos-check runs the chaos engine under the race detector: the seeded
# fault-schedule generator, the crash/restart primitive, the data-integrity
# oracle, the ddmin schedule shrinker, and a short soak (32 seeds × both
# designs in the chaos package's soak test). For a longer campaign, widen
# the soak with CHAOS_SEEDS, e.g.:
#
#     CHAOS_SEEDS=256 make chaos-check
chaos-check:
	$(GO) test -race -run 'Chaos|CrashRestart|Shrink|Oracle' \
		./internal/chaos/ ./internal/core/ ./internal/workload/ \
		./internal/experiments/

# mux-check runs the shared-QP connection-multiplexing path under the race
# detector: the ibsim mux QP primitive (attach/detach, stream demux, slot
# reuse, error scoping), the rpcrdma endpoint layer and its credit
# sub-accounting, the core cluster integration (integrity, reconnect,
# churn, crash/restart), the completion-to-CPU affinity accounting, and the
# mux capacity sweep. Race builds cap the sweep population at 2048 (the
# detector costs ~10x per simulated instruction), so a second,
# uninstrumented pass runs the full 10240-client determinism and
# memory-scaling assertions.
mux-check:
	$(GO) test -race -run 'Mux|Affinity|Migrat|Endpoint' \
		./internal/ibsim/ ./internal/rpcrdma/ ./internal/core/ \
		./internal/chaos/ ./internal/experiments/
	$(GO) test -run 'MuxCapacity' ./internal/experiments/

# scale-check runs the scale-out server path under the race detector: the
# SRQ primitive, sharded dispatch, admission control, the open-loop
# generator, the capacity sweep (including its 512-client determinism
# point), and the transport-leak regression tests that ride with them.
scale-check:
	$(GO) test -race -run 'SRQ|Shard|Admission|OpenLoop|Capacity|ParkedOrder|Evict|Hoard' \
		./internal/ibsim/ ./internal/rpcrdma/ ./internal/oncrpc/ \
		./internal/workload/ ./internal/experiments/

# faults runs the failure-injection and recovery suite under the race
# detector: fabric fault injection, client retransmit/reconnect, server
# connection lifecycle, the duplicate request cache, and the end-to-end
# recovery ablation.
faults:
	$(GO) test -race -run 'Fault|Flap|Timeout|Retransmit|Retry|Recovery|Reconnect|ConnDeath|DRC' \
		./internal/ibsim/ ./internal/rpcrdma/ ./internal/oncrpc/ \
		./internal/core/ ./internal/experiments/

vet:
	$(GO) vet ./...

# trace-check runs the observability layer's suite under the race detector:
# the trace package's unit and invariant-checker tests, the trace-driven
# invariants over real Read-Read/Read-Write runs (WQE/CQE pairing, MR
# exposure bounds, server-side no-remote-exposure), and the traced fig4
# end-to-end experiment.
trace-check:
	$(GO) test -race -run 'Trace|Chrome|Summary|Ring|Nil|Check|Histograms|Emit' \
		./internal/trace/ ./internal/core/ ./internal/experiments/

# telemetry-check runs the virtual-time telemetry engine under the race
# detector: the sampling engine and detector unit tests, the allocation-free
# sample-path pin, the counter atomic-slot fast path, and the
# telemetry-enabled fault and capacity suites (same-seed byte-identity,
# knee-onset agreement with the capacity table, chaos recovery annotation).
telemetry-check:
	$(GO) test -race -run 'Telemetry|Detect|Sampling|Slot|Sparkline|Dashboard|Annotate|Ring|Rate|LatencyWindow|Export' \
		./internal/telemetry/ ./internal/stats/ ./internal/workload/ \
		./internal/experiments/ ./internal/chaos/ ./internal/core/

# rfp-check runs the reply-fetch design under the race detector: the ibsim
# doorbell write-watch primitive, the rpcrdma reply-slot deposit/fetch path
# (no-server-Send, exposure ledger, retransmit re-arm, withheld-DONE
# pinning), the reply-fetch chaos determinism and crash-replay runs, and a
# three-way capacity smoke that asserts reply-fetch's server CPU per op
# lands below both paper designs at 512 clients.
rfp-check:
	$(GO) test -race -run 'ReplyFetch|WatchWrite|Doorbell' \
		./internal/ibsim/ ./internal/rpcrdma/ ./internal/chaos/
	$(GO) test -run 'TestCapacityReplyFetchServerCPU512' ./internal/experiments/

# race-runner focuses the race detector on the concurrency boundary: the
# sweep runner and the kernel it fans out, plus the experiments package
# that drives them in parallel.
race-runner:
	$(GO) test -race ./internal/experiments/... ./internal/des/...

# bench runs the DES kernel microbenchmarks (schedule->resume path,
# queue/event/resource wakeups, timer heap) with allocation stats.
bench:
	$(GO) test ./internal/des/ -run NONE -bench BenchmarkKernel -benchmem

# bench-record regenerates the wall-clock benchmark record for the figure
# sweeps. Bump N in BENCH_N.json when recording a new point on the repo's
# perf trajectory rather than overwriting history.
bench-record:
	$(GO) run ./cmd/nfsrdma-experiments -scale 8 -only fig5,fig7,fig8,fig9,fig10a \
		-bench-out BENCH_1.json >/dev/null

# bench-compare diffs two benchmark records figure-by-figure and fails on a
# >10% wall-clock regression:
#
#     make bench-compare OLD=BENCH_1.json NEW=BENCH_6.json
bench-compare:
	$(GO) run ./cmd/bench-compare -old $(OLD) -new $(NEW)
