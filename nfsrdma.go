package nfsrdma

import (
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Core simulation types.
type (
	// Proc is the handle a simulated process uses to sleep, wait and issue
	// I/O; every blocking API takes one.
	Proc = des.Proc
	// Sim is a discrete-event simulation instance.
	Sim = des.Sim
	// Time is virtual time in nanoseconds.
	Time = des.Time
	// Duration is a span of virtual time (alias of time.Duration).
	Duration = des.Duration
)

// Cluster construction and the client file API.
type (
	// Config describes one cluster/experiment instance.
	Config = core.Config
	// Cluster is a fully wired server + clients instance.
	Cluster = core.Cluster
	// Client is one NFS client host with a mounted export.
	Client = core.Client
	// File is an open file on a mount.
	File = core.File
	// Buffer is client application memory usable for zero-copy I/O.
	Buffer = core.Buffer
	// Server is the simulated NFS server host.
	Server = core.Server
	// Transport selects RDMA, IPoIB or GigE.
	Transport = core.Transport
	// Backend selects the server's file store.
	Backend = core.Backend
	// Profile is one testbed cost calibration.
	Profile = profiles.Profile
	// Metrics is a point-in-time cluster snapshot.
	Metrics = core.Metrics
	// AttrCache is the client-side attribute/lookup cache
	// (Client.EnableAttrCache).
	AttrCache = core.AttrCache
	// DataCache is the client-side file data cache with close-to-open
	// consistency (Client.EnableDataCache).
	DataCache = core.DataCache
	// StreamConfig tunes File.ReadSequential / WriteSequential pipelining.
	StreamConfig = core.StreamConfig
	// Histogram is the log-scale latency histogram used by
	// Client.NFS.EnableLatencyStats.
	Histogram = stats.Histogram
	// Design selects the transfer protocol (Read-Write, Read-Read, or
	// Reply-Fetch).
	Design = rpcrdma.Design
	// RegMode selects a §4.3 memory-registration strategy.
	RegMode = memreg.Mode
)

// Transports.
const (
	TransportRDMA  = core.TransportRDMA
	TransportIPoIB = core.TransportIPoIB
	TransportGigE  = core.TransportGigE
)

// Back ends.
const (
	BackendTmpfs = core.BackendTmpfs
	BackendDisk  = core.BackendDisk
)

// Bulk-transfer designs.
const (
	// DesignReadWrite is the paper's proposed design: the server pushes
	// READ data and long replies with RDMA Write; server memory is never
	// exposed.
	DesignReadWrite = rpcrdma.ReadWrite
	// DesignReadRead is the original design: the server advertises its
	// buffers as read chunks and depends on the client's RDMA_DONE.
	DesignReadRead = rpcrdma.ReadRead
	// DesignReplyFetch inverts the reply path: the client pre-registers a
	// remotely writable reply slot per call and the server deposits the
	// whole reply with RDMA Writes (doorbell last) instead of a Send —
	// exposure moves to the client, the server's send path disappears.
	DesignReplyFetch = rpcrdma.ReplyFetch
)

// Registration strategies (§4.3).
const (
	RegDynamic     = memreg.Regular
	RegFMR         = memreg.FMR
	RegAllPhysical = memreg.AllPhysical
	RegCache       = memreg.Cache
)

// NewCluster builds a simulated NFS deployment per cfg.
func NewCluster(cfg Config) *Cluster { return core.NewCluster(cfg) }

// Testbed profiles.
var (
	// SolarisSDR is the OpenSolaris SDR testbed of §5.1/§5.2.
	SolarisSDR = profiles.SolarisSDR
	// LinuxSDR is the Linux port on the same SDR hardware (§5.2/Fig. 9).
	LinuxSDR = profiles.LinuxSDR
	// LinuxDDR is the DDR multi-client testbed with the RAID-0 back end
	// (§5.3/Fig. 10).
	LinuxDDR = profiles.LinuxDDR
)

// Workload generators.
type (
	// IOzoneConfig parameterizes the IOzone-style generator.
	IOzoneConfig = workload.IOzoneConfig
	// IOzoneResult carries the measured write and read phases.
	IOzoneResult = workload.IOzoneResult
	// OLTPConfig parameterizes the FileBench-style OLTP mix.
	OLTPConfig = workload.OLTPConfig
	// OLTPResult is the measured OLTP outcome.
	OLTPResult = workload.OLTPResult
	// MultiClientConfig parameterizes the §5.3 scale-out read test.
	MultiClientConfig = workload.MultiClientConfig
	// MultiClientResult is the aggregate outcome.
	MultiClientResult = workload.MultiClientResult
	// MetadataConfig parameterizes the metadata-heavy small-op mix.
	MetadataConfig = workload.MetadataConfig
	// MetadataResult is its measured outcome.
	MetadataResult = workload.MetadataResult
)

// Workload entry points (run inside a cluster process; see Cluster.Start).
var (
	RunIOzone      = workload.RunIOzone
	RunOLTP        = workload.RunOLTP
	RunMultiClient = workload.RunMultiClient
	RunMetadata    = workload.RunMetadata
)

// Experiment harness: one entry point per table/figure of the paper.
type (
	// ExperimentScale divides workload sizes for faster runs (1 = paper
	// sizes).
	ExperimentScale = experiments.Scale
)

// Experiment entry points.
var (
	RunFigure5and6 = experiments.RunFigure5and6
	RunFigure7     = experiments.RunFigure7
	RunFigure8     = experiments.RunFigure8
	RunFigure9     = experiments.RunFigure9
	RunFigure10    = experiments.RunFigure10
	Table1         = experiments.Table1
)

// Ablation entry points for the design parameters the paper identifies but
// does not sweep.
var (
	AblationORD                = experiments.AblationORD
	AblationPhysicalContiguity = experiments.AblationPhysicalContiguity
	AblationInlineThreshold    = experiments.AblationInlineThreshold
	AblationInterruptCost      = experiments.AblationInterruptCost
	AblationCacheBound         = experiments.AblationCacheBound
	AblationClientCache        = experiments.AblationClientCache
)
